// Tests for RRC pulse shaping and the QPSK EVM measurement.
#include <cmath>

#include <gtest/gtest.h>

#include "dsp/fir.hpp"
#include "dsp/rrc.hpp"
#include "rf/dut.hpp"
#include "rf/evm.hpp"
#include "stats/rng.hpp"

namespace {

using namespace stf;

// ------------------------------------------------------------------- RRC --

TEST(Rrc, UnitEnergyAndSymmetry) {
  const auto h = dsp::design_rrc(0.35, 8, 6);
  EXPECT_EQ(h.size(), 2u * 6u * 8u + 1u);
  double energy = 0.0;
  for (double v : h) energy += v * v;
  EXPECT_NEAR(energy, 1.0, 1e-9);
  for (std::size_t i = 0; i < h.size(); ++i)
    EXPECT_NEAR(h[i], h[h.size() - 1 - i], 1e-12);
}

TEST(Rrc, CascadeIsNyquist) {
  // RRC * RRC = raised cosine: zero ISI at nonzero symbol instants.
  const std::size_t sps = 8;
  const auto h = dsp::design_rrc(0.35, sps, 8);
  // Full convolution of h with itself.
  std::vector<double> rc(2 * h.size() - 1, 0.0);
  for (std::size_t i = 0; i < h.size(); ++i)
    for (std::size_t j = 0; j < h.size(); ++j) rc[i + j] += h[i] * h[j];
  const std::size_t center = h.size() - 1;
  const double peak = rc[center];
  EXPECT_GT(peak, 0.5);
  for (int k = 1; k <= 6; ++k) {
    EXPECT_NEAR(rc[center + static_cast<std::size_t>(k) * sps] / peak, 0.0,
                2e-3)
        << "symbol offset " << k;
    EXPECT_NEAR(rc[center - static_cast<std::size_t>(k) * sps] / peak, 0.0,
                2e-3);
  }
}

TEST(Rrc, SingularityPointsAreFinite) {
  // t = 1/(4 beta) lands exactly on a sample for beta 0.25 and sps = 8.
  const auto h = dsp::design_rrc(0.25, 8, 6);
  for (double v : h) EXPECT_TRUE(std::isfinite(v));
  // beta = 0 degenerates to a sinc; still finite everywhere.
  const auto sinc = dsp::design_rrc(0.0, 8, 6);
  for (double v : sinc) EXPECT_TRUE(std::isfinite(v));
}

TEST(Rrc, BadArgumentsThrow) {
  EXPECT_THROW(dsp::design_rrc(-0.1, 8, 6), std::invalid_argument);
  EXPECT_THROW(dsp::design_rrc(1.1, 8, 6), std::invalid_argument);
  EXPECT_THROW(dsp::design_rrc(0.3, 1, 6), std::invalid_argument);
  EXPECT_THROW(dsp::design_rrc(0.3, 8, 0), std::invalid_argument);
}

// ------------------------------------------------------------------- EVM --

TEST(Evm, LinearDutHasResidualFloorOnly) {
  rf::EvmConfig cfg;
  rf::IdealGainDut dut({5.0, 0.0});
  const double evm = rf::measure_evm_percent(dut, cfg, nullptr);
  EXPECT_LT(evm, 0.5);  // finite-span RRC leaves a small ISI floor
}

TEST(Evm, InvariantToLinearGainAndPhase) {
  rf::EvmConfig cfg;
  rf::IdealGainDut a({2.0, 0.0});
  rf::IdealGainDut b({-1.0, 7.0});  // arbitrary complex gain
  EXPECT_NEAR(rf::measure_evm_percent(a, cfg, nullptr),
              rf::measure_evm_percent(b, cfg, nullptr), 1e-9);
}

TEST(Evm, CompressionRaisesEvmMonotonically) {
  rf::EvmConfig cfg;
  double prev = 0.0;
  bool first = true;
  for (double iip3 : {10.0, 0.0, -5.0, -10.0}) {
    rf::BehavioralLna dut({3.0, 0.0},
                          rf::iip3_dbm_to_source_amplitude(iip3), 0.0);
    const double evm = rf::measure_evm_percent(dut, cfg, nullptr);
    if (!first) {
      EXPECT_GT(evm, prev - 1e-9);
    }
    prev = evm;
    first = false;
  }
  EXPECT_GT(prev, 1.0);  // -10 dBm IIP3 at -20 dBm drive: >1% EVM
}

TEST(Evm, DriveLevelRaisesDistortionEvm) {
  rf::BehavioralLna dut({3.0, 0.0}, rf::iip3_dbm_to_source_amplitude(-5.0),
                        0.0);
  rf::EvmConfig lo;
  lo.level_dbm = -35.0;
  rf::EvmConfig hi;
  hi.level_dbm = -15.0;
  EXPECT_GT(rf::measure_evm_percent(dut, hi, nullptr),
            2.0 * rf::measure_evm_percent(dut, lo, nullptr));
}

TEST(Evm, NoiseRaisesEvmAtLowDrive) {
  rf::EvmConfig cfg;
  cfg.level_dbm = -70.0;  // weak signal: the noise floor matters
  rf::BehavioralLna quiet({3.0, 0.0}, 1e9, 0.0);
  rf::BehavioralLna noisy({3.0, 0.0}, 1e9, 15.0);
  stats::Rng rng_a(3), rng_b(3);
  const double evm_quiet = rf::measure_evm_percent(quiet, cfg, &rng_a);
  const double evm_noisy = rf::measure_evm_percent(noisy, cfg, &rng_b);
  EXPECT_GT(evm_noisy, 2.0 * evm_quiet);
}

TEST(Evm, DeterministicForSeed) {
  rf::EvmConfig cfg;
  rf::BehavioralLna dut({3.0, 0.0}, 0.5, 0.0);
  EXPECT_DOUBLE_EQ(rf::measure_evm_percent(dut, cfg, nullptr),
                   rf::measure_evm_percent(dut, cfg, nullptr));
}

TEST(Evm, TooFewSymbolsThrows) {
  rf::EvmConfig cfg;
  cfg.n_symbols = 8;
  rf::IdealGainDut dut({1.0, 0.0});
  EXPECT_THROW(rf::measure_evm_percent(dut, cfg, nullptr),
               std::invalid_argument);
}

}  // namespace
