// Tests for CV ridge selection, Welch PSD, and the two-stage test flow.
#include <cmath>
#include <limits>
#include <numbers>

#include <gtest/gtest.h>

#include "ate/flow.hpp"
#include "dsp/spectrum.hpp"
#include "sigtest/calibration.hpp"
#include "sigtest/knn.hpp"
#include "stats/rng.hpp"

namespace {

using namespace stf;
constexpr double kInf = std::numeric_limits<double>::infinity();

// ------------------------------------------------------- CV ridge select --

TEST(CvRidge, PrefersSmallLambdaOnCleanLinearData) {
  // Noiseless linear data: less shrinkage is strictly better.
  stats::Rng rng(3);
  const std::size_t n = 60, m = 4;
  la::Matrix sig(n, m), specs(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    double y = 1.0;
    for (std::size_t j = 0; j < m; ++j) {
      sig(i, j) = rng.uniform(-1.0, 1.0);
      y += (static_cast<double>(j) + 1.0) * sig(i, j);
    }
    specs(i, 0) = y;
  }
  sigtest::CalibrationOptions base;
  base.poly_degree = 1;
  const auto chosen = sigtest::select_ridge_by_cv(
      sig, specs, base, {1e-4, 1.0, 100.0});
  EXPECT_DOUBLE_EQ(chosen.ridge_lambda, 1e-4);
}

TEST(CvRidge, PrefersShrinkageWhenFeaturesArePureNoise) {
  // Targets independent of the features: heavy shrinkage must win.
  stats::Rng rng(5);
  const std::size_t n = 60, m = 8;
  la::Matrix sig(n, m), specs(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) sig(i, j) = rng.normal();
    specs(i, 0) = rng.normal();
  }
  sigtest::CalibrationOptions base;
  base.poly_degree = 1;
  const auto chosen = sigtest::select_ridge_by_cv(
      sig, specs, base, {1e-6, 1e3});
  EXPECT_DOUBLE_EQ(chosen.ridge_lambda, 1e3);
}

TEST(CvRidge, InvalidInputsThrow) {
  la::Matrix sig(20, 2), specs(20, 1);
  sigtest::CalibrationOptions base;
  EXPECT_THROW(sigtest::select_ridge_by_cv(sig, specs, base, {}),
               std::invalid_argument);
  EXPECT_THROW(sigtest::select_ridge_by_cv(sig, specs, base, {-1.0}),
               std::invalid_argument);
  la::Matrix tiny(4, 2), tiny_specs(4, 1);
  EXPECT_THROW(
      sigtest::select_ridge_by_cv(tiny, tiny_specs, base, {1.0}, 5),
      std::invalid_argument);
}

// ----------------------------------------------------- model serialization --

TEST(Serialization, RoundTripPredictsIdentically) {
  stats::Rng rng(11);
  const std::size_t n = 40, m = 5;
  la::Matrix sig(n, m), specs(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) sig(i, j) = rng.uniform(0.0, 1.0);
    specs(i, 0) = 3.0 * sig(i, 0) - sig(i, 2);
    specs(i, 1) = sig(i, 1) * sig(i, 1);
  }
  sigtest::CalibrationModel model;
  std::vector<double> noise_var(m, 1e-6);
  model.fit(sig, specs, noise_var);

  const std::string text = model.serialize();
  const auto restored = sigtest::CalibrationModel::deserialize(text);
  EXPECT_TRUE(restored.fitted());
  EXPECT_EQ(restored.n_specs(), 2u);
  EXPECT_EQ(restored.signature_length(), m);

  stats::Rng probe_rng(13);
  for (int t = 0; t < 20; ++t) {
    sigtest::Signature probe(m);
    for (auto& v : probe) v = probe_rng.uniform(0.0, 1.0);
    const auto a = model.predict(probe);
    const auto b = restored.predict(probe);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s)
      EXPECT_DOUBLE_EQ(a[s], b[s]);
  }
}

TEST(Serialization, RejectsCorruptedInput) {
  EXPECT_THROW(sigtest::CalibrationModel::deserialize(""),
               std::invalid_argument);
  EXPECT_THROW(sigtest::CalibrationModel::deserialize("garbage v9"),
               std::invalid_argument);

  stats::Rng rng(3);
  la::Matrix sig(10, 2), specs(10, 1);
  for (std::size_t i = 0; i < 10; ++i) {
    sig(i, 0) = rng.normal();
    sig(i, 1) = rng.normal();
    specs(i, 0) = sig(i, 0);
  }
  sigtest::CalibrationModel model;
  model.fit(sig, specs);
  std::string text = model.serialize();
  // Truncate mid-weights.
  EXPECT_THROW(sigtest::CalibrationModel::deserialize(
                   text.substr(0, text.size() / 2)),
               std::invalid_argument);
  // Unfitted model cannot serialize.
  sigtest::CalibrationModel fresh;
  EXPECT_THROW(fresh.serialize(), std::logic_error);
}

// -------------------------------------------------------------- Welch PSD --

TEST(Welch, WhiteNoiseFloorIsFlatAtSigmaSquaredOverFs) {
  // White noise of variance sigma^2 sampled at fs has one-sided PSD
  // 2 sigma^2 / fs.
  stats::Rng rng(7);
  const double fs = 1e6, sigma = 1e-3;
  std::vector<double> x(1 << 15);
  for (auto& v : x) v = rng.normal(0.0, sigma);
  const auto psd = dsp::welch_psd(x, fs, 256);
  const double expected = 2.0 * sigma * sigma / fs;
  // Average mid-band bins (skip DC/Nyquist edges).
  double avg = 0.0;
  std::size_t count = 0;
  for (std::size_t k = 5; k + 5 < psd.size(); ++k) {
    avg += psd[k];
    ++count;
  }
  avg /= static_cast<double>(count);
  EXPECT_NEAR(avg / expected, 1.0, 0.1);
}

TEST(Welch, TonePowerRecovered) {
  // Integrating the PSD across a tone's bins recovers A^2/2.
  const double fs = 100e3, amp = 0.5, freq = 12.5e3;
  std::vector<double> x(1 << 14);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = amp * std::cos(2.0 * std::numbers::pi * freq *
                          static_cast<double>(i) / fs);
  const std::size_t segment = 512;
  const auto psd = dsp::welch_psd(x, fs, segment);
  const double df = fs / static_cast<double>(segment);
  double power = 0.0;
  for (double v : psd) power += v * df;
  EXPECT_NEAR(power, amp * amp / 2.0, 0.05 * amp * amp / 2.0);
}

TEST(Welch, MoreSegmentsLowerVariance) {
  stats::Rng rng(9);
  std::vector<double> x(1 << 14);
  for (auto& v : x) v = rng.normal();
  auto spread = [&](std::size_t segment) {
    const auto psd = dsp::welch_psd(x, 1.0, segment);
    double mu = 0.0;
    for (double v : psd) mu += v;
    mu /= static_cast<double>(psd.size());
    double var = 0.0;
    for (double v : psd) var += (v - mu) * (v - mu);
    return var / (mu * mu * static_cast<double>(psd.size()));
  };
  // Short segments -> many averages -> much flatter estimate.
  EXPECT_LT(spread(128), 0.5 * spread(4096));
}

TEST(Welch, InvalidArgumentsThrow) {
  std::vector<double> x(100, 0.0);
  EXPECT_THROW(dsp::welch_psd(x, 1.0, 200), std::invalid_argument);
  EXPECT_THROW(dsp::welch_psd(x, 0.0, 50), std::invalid_argument);
  EXPECT_THROW(dsp::welch_psd(x, 1.0, 50, 1.5), std::invalid_argument);
}

// ------------------------------------------------------------------ k-NN --

TEST(Knn, ExactTrainingPointRecalled) {
  stats::Rng rng(3);
  const std::size_t n = 20, m = 4;
  la::Matrix sig(n, m), specs(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) sig(i, j) = rng.uniform(0.0, 1.0);
    specs(i, 0) = rng.normal();
  }
  sigtest::KnnRegressor knn(3);
  knn.fit(sig, specs);
  // Querying a training signature returns that device's spec exactly.
  const auto p = knn.predict(sig.row(7));
  EXPECT_DOUBLE_EQ(p[0], specs(7, 0));
}

TEST(Knn, SmoothMapApproximated) {
  stats::Rng rng(5);
  const std::size_t n = 400, m = 2;
  la::Matrix sig(n, m), specs(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    sig(i, 0) = rng.uniform(0.0, 1.0);
    sig(i, 1) = rng.uniform(0.0, 1.0);
    specs(i, 0) = 2.0 * sig(i, 0) + sig(i, 1);
  }
  sigtest::KnnRegressor knn(5);
  knn.fit(sig, specs);
  double err = 0.0;
  int count = 0;
  for (double a = 0.2; a <= 0.8; a += 0.1) {
    for (double b = 0.2; b <= 0.8; b += 0.1) {
      err += std::abs(knn.predict({a, b})[0] - (2.0 * a + b));
      ++count;
    }
  }
  EXPECT_LT(err / count, 0.1);
}

TEST(Knn, MisuseThrows) {
  EXPECT_THROW(sigtest::KnnRegressor(0), std::invalid_argument);
  sigtest::KnnRegressor knn(5);
  EXPECT_THROW(knn.predict({1.0}), std::logic_error);
  la::Matrix sig(3, 2), specs(3, 1);  // rows < k
  EXPECT_THROW(knn.fit(sig, specs), std::invalid_argument);
  la::Matrix ok(8, 2), bad_specs(7, 1);
  EXPECT_THROW(knn.fit(ok, bad_specs), std::invalid_argument);
  la::Matrix good_specs(8, 1);
  knn.fit(ok, good_specs);
  EXPECT_THROW(knn.predict({1.0, 2.0, 3.0}), std::invalid_argument);
}

// --------------------------------------------------------- two-stage flow --

TEST(TwoStage, PerfectPredictionsPackageOnlyGoodDies) {
  std::vector<std::vector<double>> truth = {{15.0}, {10.0}, {16.0}, {12.0}};
  std::vector<ate::SpecLimit> limits = {{"gain", 14.0, kInf}};
  ate::TwoStageCosts costs;
  const auto r = ate::run_two_stage_flow(truth, truth, truth, limits, costs);
  EXPECT_EQ(r.dies, 4);
  EXPECT_EQ(r.packaged, 2);
  EXPECT_EQ(r.shipped, 2);
  EXPECT_EQ(r.shipped_bad, 0);
  EXPECT_EQ(r.good_scrapped_at_wafer, 0);
  // Savings: two packages + two final tests avoided, minus 4 wafer tests.
  const double expected_saving =
      2.0 * (costs.package_usd + costs.final_test_usd) -
      4.0 * costs.wafer_test_usd;
  EXPECT_NEAR(r.cost_saved(), expected_saving, 1e-9);
}

TEST(TwoStage, WaferEscapeCaughtAtFinal) {
  // Die 0 is bad but the wafer screen passes it; final test catches it.
  std::vector<std::vector<double>> truth = {{10.0}};
  std::vector<std::vector<double>> wafer = {{15.0}};
  std::vector<std::vector<double>> final_pred = {{10.0}};
  std::vector<ate::SpecLimit> limits = {{"gain", 14.0, kInf}};
  const auto r = ate::run_two_stage_flow(truth, wafer, final_pred, limits,
                                         ate::TwoStageCosts{});
  EXPECT_EQ(r.packaged, 1);
  EXPECT_EQ(r.shipped, 0);
  EXPECT_EQ(r.shipped_bad, 0);
}

TEST(TwoStage, BothStagesFooledIsAnEscape) {
  std::vector<std::vector<double>> truth = {{10.0}};
  std::vector<std::vector<double>> optimistic = {{15.0}};
  std::vector<ate::SpecLimit> limits = {{"gain", 14.0, kInf}};
  const auto r = ate::run_two_stage_flow(truth, optimistic, optimistic,
                                         limits, ate::TwoStageCosts{});
  EXPECT_EQ(r.shipped, 1);
  EXPECT_EQ(r.shipped_bad, 1);
}

TEST(TwoStage, WaferGuardScrapsBorderlineGoodDie) {
  std::vector<std::vector<double>> truth = {{14.1}};
  std::vector<ate::SpecLimit> limits = {{"gain", 14.0, kInf}};
  const auto r = ate::run_two_stage_flow(truth, truth, truth, limits,
                                         ate::TwoStageCosts{}, 0.5, 0.0);
  EXPECT_EQ(r.packaged, 0);
  EXPECT_EQ(r.good_scrapped_at_wafer, 1);
}

TEST(TwoStage, InvalidInputsThrow) {
  std::vector<std::vector<double>> a = {{1.0}};
  std::vector<std::vector<double>> b = {{1.0}, {2.0}};
  std::vector<ate::SpecLimit> limits = {{"x", 0.0, 2.0}};
  EXPECT_THROW(
      ate::run_two_stage_flow(a, b, a, limits, ate::TwoStageCosts{}),
      std::invalid_argument);
  EXPECT_THROW(ate::run_two_stage_flow(a, a, a, {}, ate::TwoStageCosts{}),
               std::invalid_argument);
  EXPECT_THROW(ate::run_two_stage_flow(a, a, a, limits, ate::TwoStageCosts{},
                                       -1.0),
               std::invalid_argument);
}

}  // namespace
