// Tests for the framework extensions: S-parameters, outlier screening,
// parametric fault diagnosis.
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/dc.hpp"
#include "circuit/lna900.hpp"
#include "circuit/sparams.hpp"
#include "rf/population.hpp"
#include "sigtest/diagnosis.hpp"
#include "sigtest/outlier.hpp"
#include "stats/rng.hpp"

namespace {

using namespace stf;
using circuit::AcAnalysis;
using circuit::Netlist;

// ------------------------------------------------------------ S-parameters --

TEST(SParams, MatchedThruIsPerfect) {
  // Source -> 50 ohm -> node -> 50 ohm load: S11 = 0, S21 = 1 (0 dB).
  Netlist nl;
  nl.add_vsource("VS", "src", "0", 0.0, {1.0, 0.0});
  nl.add_resistor("RS", "src", "nin", 50.0);
  nl.add_resistor("RL", "nin", "0", 50.0);
  const auto dc = circuit::solve_dc(nl);
  const AcAnalysis ac(nl, dc);
  circuit::TwoPortSetup tp;
  tp.input_node = "nin";
  tp.output_node = "nin";
  const auto s = circuit::s_parameters(ac, 1e9, tp);
  EXPECT_NEAR(std::abs(s.s11), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(s.s21), 1.0, 1e-9);
  EXPECT_NEAR(s.s21_db(), 0.0, 1e-6);
}

TEST(SParams, OpenPortReflectsEverything) {
  // Port left open (huge shunt): S11 -> +1.
  Netlist nl;
  nl.add_vsource("VS", "src", "0", 0.0, {1.0, 0.0});
  nl.add_resistor("RS", "src", "nin", 50.0);
  nl.add_resistor("ROPEN", "nin", "0", 1e12);
  const auto dc = circuit::solve_dc(nl);
  const AcAnalysis ac(nl, dc);
  circuit::TwoPortSetup tp;
  tp.input_node = "nin";
  tp.output_node = "nin";
  const auto s = circuit::s_parameters(ac, 1e9, tp);
  EXPECT_NEAR(s.s11.real(), 1.0, 1e-6);
}

TEST(SParams, ShortedPortReflectsInverted) {
  Netlist nl;
  nl.add_vsource("VS", "src", "0", 0.0, {1.0, 0.0});
  nl.add_resistor("RS", "src", "nin", 50.0);
  nl.add_resistor("RSHORT", "nin", "0", 1e-9);
  const auto dc = circuit::solve_dc(nl);
  const AcAnalysis ac(nl, dc);
  circuit::TwoPortSetup tp;
  tp.input_node = "nin";
  tp.output_node = "nin";
  const auto s = circuit::s_parameters(ac, 1e9, tp);
  EXPECT_NEAR(s.s11.real(), -1.0, 1e-6);
}

TEST(SParams, LnaInputMatchAndGain) {
  // The LNA is designed for a ~50 ohm match at 900 MHz: S11 clearly below
  // 0 dB, and |S21|^2 equal to the transducer gain.
  const auto nl = circuit::Lna900::build(circuit::Lna900::nominal());
  const auto dc = circuit::solve_dc(nl);
  const AcAnalysis ac(nl, dc);
  circuit::TwoPortSetup tp;
  tp.input_node = "nin";
  tp.output_node = "out";
  const auto s = circuit::s_parameters(ac, circuit::Lna900::kF0, tp);
  EXPECT_LT(s.s11_db(), -5.0);
  const double gt =
      circuit::transducer_gain_db(ac, circuit::Lna900::kF0,
                                  circuit::Lna900::port());
  EXPECT_NEAR(s.s21_db(), gt, 1e-6);
}

TEST(SParams, BadSetupThrows) {
  Netlist nl;
  nl.add_vsource("VS", "src", "0", 0.0, {1.0, 0.0});
  nl.add_resistor("RS", "src", "nin", 50.0);
  nl.add_resistor("RL", "nin", "0", 50.0);
  const auto dc = circuit::solve_dc(nl);
  const AcAnalysis ac(nl, dc);
  circuit::TwoPortSetup tp;
  tp.input_node = "nope";
  EXPECT_THROW(circuit::s_parameters(ac, 1e9, tp), std::invalid_argument);
  tp.input_node = "nin";
  tp.output_node = "nin";
  tp.z0 = -1.0;
  EXPECT_THROW(circuit::s_parameters(ac, 1e9, tp), std::invalid_argument);
}

// --------------------------------------------------------- outlier screen --

TEST(Outlier, InPopulationScoresNearOne) {
  stats::Rng rng(3);
  const std::size_t n = 200, m = 8;
  la::Matrix sig(n, m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j)
      sig(i, j) = 10.0 * (j + 1.0) + rng.normal(0.0, 1.0);
  sigtest::OutlierScreen screen;
  screen.fit(sig);
  // A fresh in-distribution draw scores ~1.
  sigtest::Signature probe(m);
  for (std::size_t j = 0; j < m; ++j)
    probe[j] = 10.0 * (j + 1.0) + rng.normal(0.0, 1.0);
  EXPECT_LT(screen.score(probe), 2.5);
  EXPECT_FALSE(screen.is_outlier(probe));
}

TEST(Outlier, FarSignatureFlagged) {
  stats::Rng rng(5);
  const std::size_t n = 100, m = 6;
  la::Matrix sig(n, m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) sig(i, j) = rng.normal(0.0, 1.0);
  sigtest::OutlierScreen screen;
  screen.fit(sig);
  sigtest::Signature freak(m, 25.0);  // 25 sigma on every bin
  EXPECT_TRUE(screen.is_outlier(freak));
  EXPECT_GT(screen.score(freak), 10.0);
}

TEST(Outlier, MisuseThrows) {
  sigtest::OutlierScreen screen;
  EXPECT_THROW(screen.score({1.0}), std::logic_error);
  la::Matrix one_row(1, 3);
  EXPECT_THROW(screen.fit(one_row), std::invalid_argument);
  la::Matrix ok(5, 3);
  EXPECT_THROW(screen.fit(ok, {1.0}), std::invalid_argument);
  screen.fit(ok);
  EXPECT_THROW(screen.score({1.0}), std::invalid_argument);
  EXPECT_THROW(screen.is_outlier({1.0, 2.0, 3.0}, -1.0),
               std::invalid_argument);
}

TEST(Outlier, DefectiveLnaCaughtBeforePrediction) {
  // The production scenario: the screen is fitted on the calibration lot;
  // a catastrophically defective device (tank capacitor 5x nominal --
  // outside any process corner) must score far above the population.
  const auto cfg = sigtest::SignatureTestConfig::simulation_study();
  sigtest::SignatureAcquirer acq(cfg, 16);
  const auto stim = dsp::PwlWaveform::uniform(
      cfg.capture_s, {0.0, 0.25, -0.25, 0.1, -0.1, 0.2, -0.2, 0.0});
  const auto devices = rf::make_lna_population(40, 0.2, 11);

  stats::Rng rng(7);
  la::Matrix sigs(devices.size(), acq.signature_length());
  for (std::size_t i = 0; i < devices.size(); ++i)
    sigs.set_row(i, acq.acquire(*devices[i].dut, stim, &rng));
  sigtest::OutlierScreen screen;
  screen.fit(sigs);

  // In-population device: modest score.
  const auto good = acq.acquire(*devices[0].dut, stim, &rng);
  // Defective device: current gain collapsed to a tenth of nominal (a
  // classic parametric defect) -- bias and gain crater together.
  auto defect_process = circuit::Lna900::nominal();
  defect_process[6] *= 0.1;
  const auto defect = rf::extract_lna_dut(defect_process);
  const auto bad = acq.acquire(*defect.dut, stim, &rng);

  // The population scores ~1; the defect scores several sigma out (weak
  // noise-dominated bins dilute the average, so the practical threshold
  // sits between the two).
  EXPECT_LT(screen.score(good), 2.0);
  EXPECT_GT(screen.score(bad), 3.0);
  EXPECT_TRUE(screen.is_outlier(bad, 2.5));
  EXPECT_FALSE(screen.is_outlier(good, 2.5));
}

// ------------------------------------------------------------- diagnosis --

TEST(Diagnosis, RecoversDominantProcessParameters) {
  const auto cfg = sigtest::SignatureTestConfig::simulation_study();
  const auto stim = dsp::PwlWaveform::uniform(
      cfg.capture_s, {0.0, 0.25, -0.25, 0.1, -0.1, 0.3, -0.3, 0.15, -0.15,
                      0.05});
  const auto devices = rf::make_lna_population(120, 0.2, 21);
  std::vector<rf::DeviceRecord> train(devices.begin(), devices.begin() + 100);
  std::vector<rf::DeviceRecord> val(devices.begin() + 100, devices.end());

  std::vector<std::string> names(circuit::Lna900::param_names().begin(),
                                 circuit::Lna900::param_names().end());
  sigtest::ParametricDiagnoser diag(cfg, stim, names);
  stats::Rng rng(13);
  EXPECT_THROW(diag.diagnose(*devices[0].dut, rng), std::logic_error);
  diag.calibrate(train, rng);
  ASSERT_TRUE(diag.calibrated());

  const auto report =
      diag.validate(val, circuit::Lna900::nominal(), rng);
  ASSERT_EQ(report.names.size(), circuit::Lna900::kNumParams);

  // The bias resistor RB1 and gain beta_f dominate gain/IIP3 variation, so
  // they must be recoverable; parameters with little observable effect
  // (e.g. VAF) are allowed to stay poorly identified.
  double best_r2 = -1e9;
  for (double r2 : report.r_squared) best_r2 = std::max(best_r2, r2);
  EXPECT_GT(best_r2, 0.45);
  // Errors are finite and reported in percent of nominal.
  for (std::size_t j = 0; j < report.names.size(); ++j) {
    EXPECT_TRUE(std::isfinite(report.rms_percent[j]));
    EXPECT_GT(report.rms_percent[j], 0.0);
  }
}

TEST(Diagnosis, MisuseThrows) {
  const auto cfg = sigtest::SignatureTestConfig::simulation_study();
  const auto stim = dsp::PwlWaveform::uniform(cfg.capture_s, {0.0, 0.1});
  EXPECT_THROW(
      sigtest::ParametricDiagnoser(cfg, stim, std::vector<std::string>{}),
      std::invalid_argument);
  std::vector<std::string> names = {"a", "b"};
  sigtest::ParametricDiagnoser diag(cfg, stim, names);
  const auto devices = rf::make_lna_population(3, 0.2, 9);
  stats::Rng rng(1);
  std::vector<rf::DeviceRecord> one(devices.begin(), devices.begin() + 1);
  EXPECT_THROW(diag.calibrate(one, rng), std::invalid_argument);
}

}  // namespace
