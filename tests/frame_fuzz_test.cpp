// Deterministic byte-level fuzz harness for the frame parser
// (net/frame.hpp): 10,000 seeded corruptions of valid frames, replayable
// from the case index, driven through FrameReader + the typed decoders.
//
// The hardening contract under fuzz: every malformed input produces a
// typed net::ProtocolError -- never a crash, never a hang, never an
// allocation blow-up (asserted via the reader's buffer bound) -- and
// inputs that happen to survive corruption still decode cleanly. Runs as
// a plain ctest case, so the ASan/UBSan CI job fuzzes on every push.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/transport_faults.hpp"
#include "stats/rng.hpp"

namespace {

using namespace stf;
using sigtest::CaptureFlaw;
using sigtest::DispositionKind;
using sigtest::TestDisposition;

constexpr int kCases = 10000;
constexpr std::uint64_t kFuzzSeed = 0xF12D;

/// A small corpus of valid frames of every type; each fuzz case mutates
/// one of these, so the corruptions explore the parser's deep paths
/// instead of dying at the type byte.
std::vector<std::vector<std::uint8_t>> corpus() {
  std::vector<std::vector<std::uint8_t>> frames;

  net::LotRequest request;
  request.request_id = 7;
  request.seed = 9001;
  request.lot_size = 24;
  request.batch = 5;
  request.scenario = "lna:spread=0.2:pop=77";
  request.fault_spec = "clip:0.12";
  frames.push_back(net::encode_request(request));

  net::DispositionChunk chunk;
  chunk.request_id = 7;
  chunk.first_index = 0;
  for (int i = 0; i < 3; ++i) {
    TestDisposition d;
    d.kind = DispositionKind::kPredicted;
    d.attempts = 1;
    d.captures = 1;
    d.outlier_score = 0.5 * i;
    d.predicted = {1.0, 2.0, 3.0, 4.0};
    chunk.dispositions.push_back(d);
  }
  frames.push_back(net::encode_dispositions(chunk));

  frames.push_back(net::encode_lot_done({7, 24, 20, 3, 1}));
  frames.push_back(
      net::encode_reject({7, net::RejectCode::kShedOverload, "shed"}));
  return frames;
}

/// Drive one byte stream through the full parse path exactly as the
/// server's reader loop does. Returns normally or throws ProtocolError;
/// anything else (crash, other exception type) fails the harness.
void parse_stream(const std::vector<std::uint8_t>& bytes) {
  net::FrameReader reader;
  reader.feed(bytes);
  net::Frame frame;
  while (reader.next(frame)) {
    switch (frame.type) {
      case net::FrameType::kRequest:
        (void)net::decode_request(frame.payload);
        break;
      case net::FrameType::kDispositions:
        (void)net::decode_dispositions(frame.payload);
        break;
      case net::FrameType::kLotDone:
        (void)net::decode_lot_done(frame.payload);
        break;
      case net::FrameType::kReject:
        (void)net::decode_reject(frame.payload);
        break;
    }
  }
  // Whatever remains buffered is a partial frame bounded by the ceiling.
  ASSERT_LE(reader.buffered(), net::kMaxPayloadBytes + 5);
}

TEST(FrameFuzz, TenThousandSeededCorruptionsNeverEscapeProtocolError) {
  const auto seeds = corpus();
  int malformed = 0;
  int survived = 0;
  for (int c = 0; c < kCases; ++c) {
    // Each case derives its own stream from the case index, so a failure
    // report like "case 4211" replays in isolation.
    stats::Rng rng =
        stats::Rng(kFuzzSeed).derive(static_cast<std::uint64_t>(c));
    const auto& base = seeds[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(seeds.size()) - 1))];
    const auto mutated = net::mutate_frame_bytes(base, rng);
    try {
      parse_stream(mutated);
      ++survived;
    } catch (const net::ProtocolError&) {
      ++malformed;  // the typed outcome the contract demands
    } catch (...) {
      FAIL() << "case " << c << ": escaped exception that is not a "
             << "ProtocolError";
    }
  }
  // The mutator must actually be producing malformed inputs (and some
  // survivors keep the clean path honest); a mutator regression that made
  // every input parse -- or none -- would void the harness.
  EXPECT_EQ(malformed + survived, kCases);
  EXPECT_GT(malformed, kCases / 4) << "mutator stopped producing damage";
  EXPECT_GT(survived, 0) << "mutator never leaves a frame intact";
}

TEST(FrameFuzz, ConcatenatedCorruptionsParseAsAStream) {
  // Several mutated frames glued together, fed in random-sized slices:
  // exercises resynchronization-free streaming (one bad frame poisons the
  // connection, which is the design -- but it must do so with a typed
  // error at SOME point, never a crash or hang).
  const auto seeds = corpus();
  for (int c = 0; c < 500; ++c) {
    stats::Rng rng = stats::Rng(kFuzzSeed + 1).derive(
        static_cast<std::uint64_t>(c));
    std::vector<std::uint8_t> stream;
    const int n_frames = rng.uniform_int(2, 4);
    for (int f = 0; f < n_frames; ++f) {
      const auto& base = seeds[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(seeds.size()) - 1))];
      const auto mutated = net::mutate_frame_bytes(base, rng);
      stream.insert(stream.end(), mutated.begin(), mutated.end());
    }
    try {
      net::FrameReader reader;
      std::size_t at = 0;
      net::Frame frame;
      while (at < stream.size()) {
        const std::size_t slice = static_cast<std::size_t>(
            rng.uniform_int(1, 97));
        const std::size_t n = std::min(slice, stream.size() - at);
        reader.feed(std::span<const std::uint8_t>(stream.data() + at, n));
        at += n;
        while (reader.next(frame)) {
        }
      }
    } catch (const net::ProtocolError&) {
      // typed; fine
    } catch (...) {
      FAIL() << "stream case " << c << ": escaped non-ProtocolError";
    }
  }
}

}  // namespace
