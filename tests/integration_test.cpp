// Integration tests: the complete signature-test flow end to end, at
// reduced scale so the suite stays fast.
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/lna900.hpp"
#include "rf/population.hpp"
#include "sigtest/optimizer.hpp"
#include "sigtest/runtime.hpp"
#include "stats/rng.hpp"

namespace {

using namespace stf;

sigtest::StimulusOptimizerConfig small_ga_config(double capture_s) {
  sigtest::StimulusOptimizerConfig oc;
  oc.encoding.n_breakpoints = 12;
  oc.encoding.duration_s = capture_s;
  oc.encoding.v_min = -0.45;
  oc.encoding.v_max = 0.45;
  oc.ga.population = 16;
  oc.ga.generations = 10;
  oc.ga.seed = 3;
  return oc;
}

// Shared fixture state: the expensive pieces are built once.
class FullFlow : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cfg_ = new sigtest::SignatureTestConfig(
        sigtest::SignatureTestConfig::simulation_study());
    perturb_ = new sigtest::PerturbationSet(sigtest::lna900_factory(),
                                            circuit::Lna900::nominal(), 0.05);
    acquirer_ = new sigtest::SignatureAcquirer(*cfg_, 16);
    auto opt = sigtest::optimize_stimulus(*perturb_, *acquirer_,
                                          small_ga_config(cfg_->capture_s));
    stimulus_ = new dsp::PwlWaveform(opt.waveform);
    objective_history_ = new std::vector<double>(opt.history);
    devices_ = new std::vector<rf::DeviceRecord>(
        rf::make_lna_population(60, 0.2, 42));
  }
  static void TearDownTestSuite() {
    delete cfg_;
    delete perturb_;
    delete acquirer_;
    delete stimulus_;
    delete objective_history_;
    delete devices_;
  }

  static sigtest::SignatureTestConfig* cfg_;
  static sigtest::PerturbationSet* perturb_;
  static sigtest::SignatureAcquirer* acquirer_;
  static dsp::PwlWaveform* stimulus_;
  static std::vector<double>* objective_history_;
  static std::vector<rf::DeviceRecord>* devices_;
};

sigtest::SignatureTestConfig* FullFlow::cfg_ = nullptr;
sigtest::PerturbationSet* FullFlow::perturb_ = nullptr;
sigtest::SignatureAcquirer* FullFlow::acquirer_ = nullptr;
dsp::PwlWaveform* FullFlow::stimulus_ = nullptr;
std::vector<double>* FullFlow::objective_history_ = nullptr;
std::vector<rf::DeviceRecord>* FullFlow::devices_ = nullptr;

TEST_F(FullFlow, GaObjectiveImproves) {
  const auto& h = *objective_history_;
  ASSERT_GE(h.size(), 2u);
  EXPECT_LT(h.back(), h.front());
}

TEST_F(FullFlow, CalibrateAndValidatePredictsSpecs) {
  auto split = rf::split_population(*devices_, 45);
  sigtest::FastestRuntime runtime(*cfg_, *stimulus_,
                                  circuit::LnaSpecs::names());
  stats::Rng rng(9);
  runtime.calibrate(split.calibration, rng);
  ASSERT_TRUE(runtime.calibrated());
  auto report = runtime.validate(split.validation, rng);
  ASSERT_EQ(report.specs.size(), 3u);

  // Gain predicted well within the population spread.
  const auto& gain = report.specs[0];
  EXPECT_LT(gain.std_error, 0.15);
  EXPECT_GT(gain.r_squared, 0.85);
  // IIP3 tracks well too (the paper's best-correlated spec).
  const auto& iip3 = report.specs[2];
  EXPECT_GT(iip3.r_squared, 0.8);
  // NF is the hardest spec (paper: 6x worse than gain); it should still
  // carry some signal but is allowed to be the worst.
  const auto& nf = report.specs[1];
  EXPECT_LT(nf.r_squared, gain.r_squared);
}

TEST_F(FullFlow, TestDeviceMatchesTrueSpecs) {
  auto split = rf::split_population(*devices_, 45);
  sigtest::FastestRuntime runtime(*cfg_, *stimulus_,
                                  circuit::LnaSpecs::names());
  stats::Rng rng(11);
  runtime.calibrate(split.calibration, rng);
  const auto& dev = split.validation.front();
  const auto predicted = runtime.test_device(*dev.dut, rng);
  ASSERT_EQ(predicted.size(), 3u);
  // Single-device spot check (statistical quality is asserted in
  // CalibrateAndValidatePredictsSpecs); tolerances sized for one draw from
  // a 45-device calibration.
  EXPECT_NEAR(predicted[0], dev.specs.gain_db, 0.8);
  EXPECT_NEAR(predicted[2], dev.specs.iip3_dbm, 1.5);
}

TEST_F(FullFlow, UncalibratedRuntimeThrows) {
  sigtest::FastestRuntime runtime(*cfg_, *stimulus_,
                                  circuit::LnaSpecs::names());
  stats::Rng rng(3);
  EXPECT_THROW(runtime.test_device(*devices_->front().dut, rng),
               std::logic_error);
  EXPECT_THROW(runtime.validate(*devices_, rng), std::logic_error);
}

TEST_F(FullFlow, OptimizedBeatsConstantStimulus) {
  // Eq. 10 objective of the GA result vs. a flat DC stimulus: the flat
  // stimulus carries no modulation diversity and must score worse.
  const auto flat = dsp::PwlWaveform::uniform(
      cfg_->capture_s, std::vector<double>(12, 0.25));
  const auto opt_obj =
      sigtest::evaluate_stimulus(*perturb_, *acquirer_, *stimulus_);
  const auto flat_obj =
      sigtest::evaluate_stimulus(*perturb_, *acquirer_, flat);
  EXPECT_LT(opt_obj.f, flat_obj.f);
}

TEST_F(FullFlow, HardwareStudyConfigRuns) {
  // The 5 ms / 1 MHz configuration must run the whole loop on the
  // behavioral RF401 population.
  const auto cfg = sigtest::SignatureTestConfig::hardware_study();
  auto devices = rf::make_rf401_population({}, 19);
  auto split = rf::split_population(devices, 28);

  // Behavioral-model optimization stand-in: a rich multi-level stimulus
  // (the paper used a behavioral-model-optimized stimulus here). The
  // modulation must be fast enough that compression sidebands land in
  // distinct signature bins from the main beat.
  stats::Rng srng(5);
  std::vector<double> bp(64);
  for (auto& v : bp) v = srng.uniform(-0.25, 0.25);
  const auto stim = dsp::PwlWaveform::uniform(cfg.capture_s, bp);
  sigtest::CalibrationOptions co;
  co.ridge_lambda = 1e-1;
  sigtest::FastestRuntime runtime(cfg, stim, circuit::LnaSpecs::names(), co,
                                  32);
  stats::Rng rng(24);
  runtime.calibrate(split.calibration, rng);
  auto report = runtime.validate(split.validation, rng);
  // 27 validation devices; gain strongly and IIP3 usefully correlated.
  ASSERT_EQ(report.specs[0].truth.size(), 27u);
  EXPECT_GT(report.specs[0].r_squared, 0.9);
  EXPECT_LT(report.specs[0].rms_error, 0.4);
  EXPECT_GT(report.specs[2].r_squared, 0.3);
}

}  // namespace
