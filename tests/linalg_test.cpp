// Unit and property tests for the linalg substrate.
#include <cmath>
#include <complex>
#include <random>

#include <gtest/gtest.h>

#include "linalg/cholesky.hpp"
#include "linalg/lstsq.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "linalg/vector_ops.hpp"

namespace {

using stf::la::CMatrix;
using stf::la::Matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = dist(gen);
  return m;
}

std::vector<double> random_vector(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(gen);
  return v;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double m = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      m = std::max(m, std::abs(a(r, c) - b(r, c)));
  return m;
}

// ---------------------------------------------------------------- Matrix --

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, ArithmeticOps) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(0, 0), -3.0);
  Matrix scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled(1, 1), 8.0);
}

TEST(Matrix, MatmulKnownResult) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, MatvecKnownResult) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  std::vector<double> x{1.0, 1.0};
  auto y = a * x;
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, TransposeInvolution) {
  Matrix a = random_matrix(4, 7, 11);
  EXPECT_EQ(max_abs_diff(a.transposed().transposed(), a), 0.0);
}

TEST(Matrix, IdentityIsMultiplicativeNeutral) {
  Matrix a = random_matrix(5, 5, 3);
  Matrix i = Matrix::identity(5);
  EXPECT_LT(max_abs_diff(a * i, a), 1e-15);
  EXPECT_LT(max_abs_diff(i * a, a), 1e-15);
}

TEST(Matrix, RowColRoundTrip) {
  Matrix a = random_matrix(3, 4, 7);
  auto r = a.row(1);
  auto c = a.col(2);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(r[2], a(1, 2));
  EXPECT_DOUBLE_EQ(c[1], a(1, 2));
  Matrix b(3, 4);
  for (std::size_t i = 0; i < 3; ++i) b.set_row(i, a.row(i));
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
}

// ------------------------------------------------------------ vector_ops --

TEST(VectorOps, DotAndNorm) {
  std::vector<double> a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(stf::la::dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(stf::la::norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(stf::la::norm_inf(a), 4.0);
}

TEST(VectorOps, SizeMismatchThrows) {
  std::vector<double> a{1.0};
  std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(stf::la::dot(a, b), std::invalid_argument);
  EXPECT_THROW(stf::la::add(a, b), std::invalid_argument);
}

TEST(VectorOps, AxpyMatchesManual) {
  std::vector<double> x{1.0, 2.0};
  std::vector<double> y{10.0, 20.0};
  stf::la::axpy(0.5, x, y);
  EXPECT_DOUBLE_EQ(y[0], 10.5);
  EXPECT_DOUBLE_EQ(y[1], 21.0);
}

TEST(VectorOps, NormalizedHasUnitNorm) {
  auto v = random_vector(9, 5);
  EXPECT_NEAR(stf::la::norm2(stf::la::normalized(v)), 1.0, 1e-14);
  std::vector<double> zero(4, 0.0);
  EXPECT_EQ(stf::la::normalized(zero), zero);
}

// -------------------------------------------------------------------- LU --

TEST(Lu, SolvesKnownSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  std::vector<double> b{3.0, 5.0};
  auto x = stf::la::lu_solve(a, b);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, SingularThrows) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(stf::la::LuDecomposition<double>{a}, std::runtime_error);
}

TEST(Lu, DeterminantKnown) {
  Matrix a{{4.0, 3.0}, {6.0, 3.0}};
  stf::la::LuDecomposition<double> lu(a);
  EXPECT_NEAR(lu.determinant(), -6.0, 1e-12);
}

TEST(Lu, ComplexSolve) {
  using C = std::complex<double>;
  CMatrix a{{C(1.0, 1.0), C(2.0, 0.0)}, {C(0.0, -1.0), C(1.0, 0.0)}};
  std::vector<C> xtrue{C(1.0, 2.0), C(-1.0, 0.5)};
  auto b = a * xtrue;
  auto x = stf::la::lu_solve(a, b);
  EXPECT_NEAR(std::abs(x[0] - xtrue[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - xtrue[1]), 0.0, 1e-12);
}

TEST(Lu, InverseTimesSelfIsIdentity) {
  Matrix a = random_matrix(6, 6, 17);
  for (std::size_t i = 0; i < 6; ++i) a(i, i) += 3.0;  // well-conditioned
  Matrix inv = stf::la::inverse(a);
  EXPECT_LT(max_abs_diff(a * inv, Matrix::identity(6)), 1e-10);
}

// Property sweep: random solve round-trips over several sizes/seeds.
class LuRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LuRoundTrip, SolveRecoversX) {
  const int seed = GetParam();
  const std::size_t n = 2 + static_cast<std::size_t>(seed % 9);
  Matrix a = random_matrix(n, n, static_cast<unsigned>(seed));
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 2.0;
  auto xtrue = random_vector(n, static_cast<unsigned>(seed + 1000));
  auto b = a * xtrue;
  auto x = stf::la::lu_solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xtrue[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuRoundTrip, ::testing::Range(0, 20));

// -------------------------------------------------------------- Cholesky --

TEST(Cholesky, FactorOfKnownSpdMatrix) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  stf::la::Cholesky chol(a);
  const Matrix& l = chol.factor();
  EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, NonSpdThrows) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // indefinite
  EXPECT_THROW(stf::la::Cholesky{a}, std::runtime_error);
}

class CholeskyRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyRoundTrip, SolveRecoversX) {
  const int seed = GetParam();
  const std::size_t n = 2 + static_cast<std::size_t>(seed % 7);
  Matrix g = random_matrix(n + 3, n, static_cast<unsigned>(seed));
  Matrix a = stf::la::gram(g);  // SPD with high probability
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 0.5;
  auto xtrue = random_vector(n, static_cast<unsigned>(seed + 99));
  auto b = a * xtrue;
  auto x = stf::la::cholesky_solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xtrue[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskyRoundTrip, ::testing::Range(0, 15));

// -------------------------------------------------------------------- QR --

TEST(Qr, ThinFactorsReconstructA) {
  Matrix a = random_matrix(8, 4, 23);
  stf::la::QrDecomposition qr(a);
  Matrix recon = qr.q_thin() * qr.r();
  EXPECT_LT(max_abs_diff(recon, a), 1e-12);
}

TEST(Qr, QHasOrthonormalColumns) {
  Matrix a = random_matrix(10, 5, 29);
  stf::la::QrDecomposition qr(a);
  Matrix q = qr.q_thin();
  Matrix qtq = q.transposed() * q;
  EXPECT_LT(max_abs_diff(qtq, Matrix::identity(5)), 1e-12);
}

TEST(Qr, WideMatrixThrows) {
  EXPECT_THROW(stf::la::QrDecomposition{random_matrix(3, 5, 1)},
               std::invalid_argument);
}

TEST(Qr, ExactSolveOnSquareSystem) {
  Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  std::vector<double> b{2.0, 8.0};
  auto x = stf::la::qr_lstsq(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Qr, LeastSquaresResidualIsOrthogonalToColumns) {
  Matrix a = random_matrix(12, 4, 31);
  auto b = random_vector(12, 37);
  auto x = stf::la::qr_lstsq(a, b);
  auto ax = a * x;
  std::vector<double> r = stf::la::sub(b, ax);
  // Normal equations: A^T r == 0 at the least-squares optimum.
  auto atr = stf::la::at_b(a, r);
  for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(Qr, RankDeficientDetected) {
  Matrix a(6, 3);
  for (std::size_t i = 0; i < 6; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = 2.0 * static_cast<double>(i);  // col 1 = 2 * col 0
    a(i, 2) = 1.0;
  }
  stf::la::QrDecomposition qr(a);
  EXPECT_FALSE(qr.full_rank());
  EXPECT_THROW(qr.solve(std::vector<double>(6, 1.0)), std::runtime_error);
}

// ------------------------------------------------------------------- SVD --

TEST(Svd, DiagonalMatrixSingularValues) {
  Matrix a{{3.0, 0.0}, {0.0, 2.0}};
  auto d = stf::la::svd(a);
  ASSERT_EQ(d.s.size(), 2u);
  EXPECT_NEAR(d.s[0], 3.0, 1e-12);
  EXPECT_NEAR(d.s[1], 2.0, 1e-12);
}

TEST(Svd, ReconstructsTallMatrix) {
  Matrix a = random_matrix(9, 4, 41);
  auto d = stf::la::svd(a);
  Matrix sigma(4, 4);
  for (std::size_t i = 0; i < 4; ++i) sigma(i, i) = d.s[i];
  Matrix recon = d.u * sigma * d.v.transposed();
  EXPECT_LT(max_abs_diff(recon, a), 1e-10);
}

TEST(Svd, ReconstructsWideMatrix) {
  Matrix a = random_matrix(3, 7, 43);
  auto d = stf::la::svd(a);
  Matrix sigma(3, 3);
  for (std::size_t i = 0; i < 3; ++i) sigma(i, i) = d.s[i];
  Matrix recon = d.u * sigma * d.v.transposed();
  EXPECT_LT(max_abs_diff(recon, a), 1e-10);
}

TEST(Svd, SingularValuesDescendingAndNonNegative) {
  Matrix a = random_matrix(6, 6, 47);
  auto d = stf::la::svd(a);
  for (std::size_t i = 1; i < d.s.size(); ++i) {
    EXPECT_GE(d.s[i - 1], d.s[i]);
    EXPECT_GE(d.s[i], 0.0);
  }
}

TEST(Svd, RankOfRankDeficientMatrix) {
  Matrix a(5, 3);
  auto c0 = random_vector(5, 51);
  for (std::size_t i = 0; i < 5; ++i) {
    a(i, 0) = c0[i];
    a(i, 1) = 3.0 * c0[i];
    a(i, 2) = -c0[i];
  }
  auto d = stf::la::svd(a);
  EXPECT_EQ(d.rank(1e-10), 1u);
}

TEST(Svd, OrthonormalFactors) {
  Matrix a = random_matrix(8, 5, 53);
  auto d = stf::la::svd(a);
  EXPECT_LT(max_abs_diff(d.u.transposed() * d.u, Matrix::identity(5)), 1e-10);
  EXPECT_LT(max_abs_diff(d.v.transposed() * d.v, Matrix::identity(5)), 1e-10);
}

// Moore-Penrose axioms as a property sweep over random shapes.
class PinvAxioms : public ::testing::TestWithParam<int> {};

TEST_P(PinvAxioms, SatisfiesAllFour) {
  const int seed = GetParam();
  const std::size_t m = 2 + static_cast<std::size_t>((seed * 7) % 6);
  const std::size_t n = 2 + static_cast<std::size_t>((seed * 3) % 6);
  Matrix a = random_matrix(m, n, static_cast<unsigned>(100 + seed));
  Matrix ap = stf::la::pinv(a);
  EXPECT_LT(max_abs_diff(a * ap * a, a), 1e-9);                        // AXA=A
  EXPECT_LT(max_abs_diff(ap * a * ap, ap), 1e-9);                      // XAX=X
  EXPECT_LT(max_abs_diff((a * ap).transposed(), a * ap), 1e-9);        // (AX)^T
  EXPECT_LT(max_abs_diff((ap * a).transposed(), ap * a), 1e-9);        // (XA)^T
}

INSTANTIATE_TEST_SUITE_P(Shapes, PinvAxioms, ::testing::Range(0, 18));

TEST(Svd, LstsqMatchesQrOnFullRank) {
  Matrix a = random_matrix(10, 4, 61);
  auto b = random_vector(10, 67);
  auto x_qr = stf::la::qr_lstsq(a, b);
  auto x_svd = stf::la::svd_lstsq(a, b);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(x_qr[i], x_svd[i], 1e-9);
}

TEST(Svd, LstsqMinimumNormOnUnderdetermined) {
  // x + y = 2 has minimum-norm solution (1, 1).
  Matrix a{{1.0, 1.0}};
  auto x = stf::la::svd_lstsq(a, {2.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Svd, ConditionNumberOfIdentityIsOne) {
  auto d = stf::la::svd(Matrix::identity(4));
  EXPECT_NEAR(d.condition_number(), 1.0, 1e-12);
}

// ----------------------------------------------------------------- lstsq --

TEST(Ridge, ZeroLambdaMatchesLstsq) {
  Matrix a = random_matrix(9, 3, 71);
  auto b = random_vector(9, 73);
  auto x0 = stf::la::lstsq(a, b);
  auto x1 = stf::la::ridge(a, b, 0.0);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x0[i], x1[i], 1e-9);
}

TEST(Ridge, ShrinksSolutionNorm) {
  Matrix a = random_matrix(20, 5, 79);
  auto b = random_vector(20, 83);
  auto x0 = stf::la::ridge(a, b, 0.0);
  auto x1 = stf::la::ridge(a, b, 10.0);
  EXPECT_LT(stf::la::norm2(x1), stf::la::norm2(x0));
}

TEST(Ridge, NegativeLambdaThrows) {
  Matrix a = random_matrix(4, 2, 89);
  EXPECT_THROW(stf::la::ridge(a, random_vector(4, 90), -1.0),
               std::invalid_argument);
}

TEST(Ridge, LargeLambdaDrivesSolutionTowardZero) {
  Matrix a = random_matrix(15, 4, 97);
  auto b = random_vector(15, 101);
  auto x = stf::la::ridge(a, b, 1e9);
  EXPECT_LT(stf::la::norm2(x), 1e-6);
}

TEST(Gram, MatchesExplicitProduct) {
  Matrix a = random_matrix(7, 3, 103);
  EXPECT_LT(max_abs_diff(stf::la::gram(a), a.transposed() * a), 1e-13);
}

}  // namespace
