// Tests for the 900 MHz LNA device-under-test model.
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/ac.hpp"
#include "circuit/dc.hpp"
#include "circuit/lna900.hpp"
#include "circuit/rfmeasure.hpp"
#include "stats/rng.hpp"
#include "stats/sampling.hpp"

namespace {

using namespace stf::circuit;

TEST(Lna900, NominalBiasPoint) {
  auto nl = Lna900::build(Lna900::nominal());
  auto dc = solve_dc(nl);
  ASSERT_EQ(dc.bjt_op.size(), 1u);
  // Base-current bias: Ic ~= bf * (VCC - Vbe) / RB1 ~= 3 mA.
  EXPECT_GT(dc.bjt_op[0].ic, 1e-3);
  EXPECT_LT(dc.bjt_op[0].ic, 6e-3);
  // Collector sits at the supply (inductive DC feed).
  EXPECT_NEAR(dc.voltage(nl.node("nc")), 3.0, 0.01);
  // Emitter is a DC short to ground through LE.
  EXPECT_NEAR(dc.voltage(nl.node("ne")), 0.0, 1e-6);
}

TEST(Lna900, NominalSpecsInDesignRange) {
  auto specs = Lna900::measure(Lna900::nominal());
  EXPECT_GT(specs.gain_db, 13.0);
  EXPECT_LT(specs.gain_db, 18.0);
  EXPECT_GT(specs.nf_db, 1.5);
  EXPECT_LT(specs.nf_db, 4.0);
  EXPECT_GT(specs.iip3_dbm, -15.0);
  EXPECT_LT(specs.iip3_dbm, 0.0);
}

TEST(Lna900, GainPeaksNear900MHz) {
  auto nl = Lna900::build(Lna900::nominal());
  auto dc = solve_dc(nl);
  AcAnalysis ac(nl, dc);
  const RfPort p = Lna900::port();
  const double g900 = transducer_gain_db(ac, 900e6, p);
  EXPECT_GT(g900, transducer_gain_db(ac, 600e6, p));
  EXPECT_GT(g900, transducer_gain_db(ac, 1300e6, p));
}

TEST(Lna900, MeasureIsDeterministic) {
  auto a = Lna900::measure(Lna900::nominal());
  auto b = Lna900::measure(Lna900::nominal());
  EXPECT_DOUBLE_EQ(a.gain_db, b.gain_db);
  EXPECT_DOUBLE_EQ(a.nf_db, b.nf_db);
  EXPECT_DOUBLE_EQ(a.iip3_dbm, b.iip3_dbm);
}

TEST(Lna900, WrongProcessVectorSizeThrows) {
  EXPECT_THROW(Lna900::build(std::vector<double>(3, 1.0)),
               std::invalid_argument);
  auto p = Lna900::nominal();
  p[0] = -1.0;
  EXPECT_THROW(Lna900::build(p), std::invalid_argument);
}

TEST(Lna900, SpecsVectorRoundTrip) {
  LnaSpecs s;
  s.gain_db = 1.0;
  s.nf_db = 2.0;
  s.iip3_dbm = 3.0;
  auto v = s.to_vector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(LnaSpecs::names().size(), 3u);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

// Every process parameter must actually move at least one specification --
// otherwise the paper's premise (signatures predict specs because both
// respond to process) would silently fail for that parameter.
class ParamSensitivity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParamSensitivity, ParameterMovesSomeSpec) {
  const std::size_t idx = GetParam();
  auto nominal = Lna900::nominal();
  auto specs0 = Lna900::measure(nominal);
  auto perturbed = nominal;
  perturbed[idx] *= 1.15;
  auto specs1 = Lna900::measure(perturbed);
  const double delta = std::abs(specs1.gain_db - specs0.gain_db) +
                       std::abs(specs1.nf_db - specs0.nf_db) +
                       std::abs(specs1.iip3_dbm - specs0.iip3_dbm);
  EXPECT_GT(delta, 1e-4) << "parameter " << Lna900::param_names()[idx];
}

INSTANTIATE_TEST_SUITE_P(AllParams, ParamSensitivity,
                         ::testing::Range<std::size_t>(0, Lna900::kNumParams));

TEST(Lna900, PopulationSpreadMatchesPaperScale) {
  // +/-20% process spread should produce roughly the paper's 2-3 dB gain
  // spread (Fig. 8) -- not zero, not tens of dB.
  stf::stats::UniformBox box{Lna900::nominal(), 0.2};
  stf::stats::Rng rng(7);
  double gmin = 1e9, gmax = -1e9;
  for (int i = 0; i < 30; ++i) {
    auto s = Lna900::measure(box.sample(rng));
    gmin = std::min(gmin, s.gain_db);
    gmax = std::max(gmax, s.gain_db);
  }
  EXPECT_GT(gmax - gmin, 0.5);
  EXPECT_LT(gmax - gmin, 8.0);
}

TEST(Lna900, EveryDrawnDeviceConverges) {
  stf::stats::UniformBox box{Lna900::nominal(), 0.2};
  stf::stats::Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NO_THROW(Lna900::measure(box.sample(rng)));
  }
}

}  // namespace
