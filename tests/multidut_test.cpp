// Tests for the additional DUT classes (PA driver, attenuator pad).
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/attenuator.hpp"
#include "circuit/dc.hpp"
#include "circuit/pa900.hpp"
#include "stats/rng.hpp"
#include "stats/sampling.hpp"

namespace {

using namespace stf::circuit;

// -------------------------------------------------------------------- PA --

TEST(Pa900, NominalSpecsInDesignRange) {
  const auto specs = Pa900::measure(Pa900::nominal());
  EXPECT_GT(specs.gain_db, 15.0);
  EXPECT_LT(specs.gain_db, 24.0);
  // Hot class-A bias: ~20 mA.
  EXPECT_GT(specs.idd_ma, 12.0);
  EXPECT_LT(specs.idd_ma, 30.0);
}

TEST(Pa900, HotterBiasIsMoreLinearThanLna) {
  // Higher standing current -> better IIP3 than the 3 mA LNA.
  const auto pa = Pa900::measure(Pa900::nominal());
  EXPECT_GT(pa.iip3_dbm, -6.0);
}

TEST(Pa900, IddTracksBiasResistor) {
  auto p = Pa900::nominal();
  const double idd_nom = Pa900::measure(p).idd_ma;
  p[0] *= 2.0;  // double RB1 -> roughly half the base current
  const double idd_starved = Pa900::measure(p).idd_ma;
  EXPECT_LT(idd_starved, 0.65 * idd_nom);
}

TEST(Pa900, BadProcessThrows) {
  EXPECT_THROW(Pa900::build(std::vector<double>(2, 1.0)),
               std::invalid_argument);
  auto p = Pa900::nominal();
  p[3] = 0.0;
  EXPECT_THROW(Pa900::build(p), std::invalid_argument);
}

TEST(Pa900, PopulationConverges) {
  stf::stats::UniformBox box{Pa900::nominal(), 0.2};
  stf::stats::Rng rng(3);
  for (int i = 0; i < 25; ++i)
    EXPECT_NO_THROW(Pa900::measure(box.sample(rng)));
}

TEST(Pa900, SpecsVectorShape) {
  EXPECT_EQ(PaSpecs::names().size(), 3u);
  PaSpecs s;
  s.idd_ma = 20.0;
  EXPECT_DOUBLE_EQ(s.to_vector()[2], 20.0);
}

// ------------------------------------------------------------ attenuator --

TEST(Attenuator, NominalIsSixDbMatchedPad) {
  const auto specs = AttenuatorPad::measure(AttenuatorPad::nominal());
  EXPECT_NEAR(specs.loss_db, 6.0, 0.05);
  // Perfectly matched at nominal: very high return loss.
  EXPECT_GT(specs.return_loss_db, 30.0);
}

TEST(Attenuator, MistunedPadDegradesMatch) {
  auto p = AttenuatorPad::nominal();
  p[0] *= 1.3;  // one shunt arm off by 30%
  const auto specs = AttenuatorPad::measure(p);
  const auto nominal = AttenuatorPad::measure(AttenuatorPad::nominal());
  EXPECT_LT(specs.return_loss_db, nominal.return_loss_db - 20.0);
  EXPECT_GT(specs.return_loss_db, 5.0);
}

TEST(Attenuator, LossIncreasesWithSeriesResistor) {
  auto p = AttenuatorPad::nominal();
  const double loss_nom = AttenuatorPad::measure(p).loss_db;
  p[1] *= 1.5;
  EXPECT_GT(AttenuatorPad::measure(p).loss_db, loss_nom + 0.5);
}

TEST(Attenuator, PassiveSoLossIsPositive) {
  stf::stats::UniformBox box{AttenuatorPad::nominal(), 0.2};
  stf::stats::Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    const auto specs = AttenuatorPad::measure(box.sample(rng));
    EXPECT_GT(specs.loss_db, 0.0);
  }
}

TEST(Attenuator, BadProcessThrows) {
  EXPECT_THROW(AttenuatorPad::build({1.0}), std::invalid_argument);
  EXPECT_THROW(AttenuatorPad::build({-1.0, 37.0, 150.0}),
               std::invalid_argument);
}

}  // namespace
