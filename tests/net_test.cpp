// Unit tests for the net layer (net/frame.hpp, net/socket.hpp,
// net/transport_faults.hpp, net/client.hpp): frame round trips with
// bit-exact doubles, decoder rejection of malformed payloads, incremental
// FrameReader reassembly with ceiling-before-allocation, loopback socket
// plumbing, deterministic transport fault planning, and the client's capped
// exponential backoff through the injectable sleep hook.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/socket.hpp"
#include "net/transport_faults.hpp"
#include "stats/rng.hpp"

namespace {

using namespace stf;
using sigtest::CaptureFlaw;
using sigtest::DispositionKind;
using sigtest::TestDisposition;

net::LotRequest sample_request() {
  net::LotRequest request;
  request.request_id = 42;
  request.seed = 9001;
  request.lot_size = 24;
  request.batch = 5;
  request.scenario = "lna:spread=0.2:pop=77";
  request.fault_spec = "clip:0.12,contact:0.05:0.05";
  return request;
}

TEST(Frame, RequestRoundTripsExactly) {
  const net::LotRequest request = sample_request();
  const auto bytes = net::encode_request(request);
  // Header: length excludes the 5 header bytes; type tags a request.
  ASSERT_GE(bytes.size(), 5u);
  EXPECT_EQ(bytes[4], static_cast<std::uint8_t>(net::FrameType::kRequest));
  const net::LotRequest decoded = net::decode_request(
      std::span<const std::uint8_t>(bytes).subspan(5));
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.seed, request.seed);
  EXPECT_EQ(decoded.lot_size, request.lot_size);
  EXPECT_EQ(decoded.batch, request.batch);
  EXPECT_EQ(decoded.scenario, request.scenario);
  EXPECT_EQ(decoded.fault_spec, request.fault_spec);
}

TEST(Frame, DispositionsRoundTripBitExactly) {
  net::DispositionChunk chunk;
  chunk.request_id = 7;
  chunk.first_index = 64;
  TestDisposition d;
  d.kind = DispositionKind::kPredictedAfterRetry;
  d.last_flaw = CaptureFlaw::kOutlier;
  d.attempts = 2;
  d.captures = 5;
  d.outlier_score = 3.25e-17;
  // Values chosen to catch any text/rounding path: denormal, -0.0, NaN.
  d.predicted = {1.0 / 3.0, -0.0, 5e-324,
                 std::numeric_limits<double>::quiet_NaN()};
  chunk.dispositions.push_back(d);
  const auto bytes = net::encode_dispositions(chunk);
  const net::DispositionChunk decoded = net::decode_dispositions(
      std::span<const std::uint8_t>(bytes).subspan(5));
  ASSERT_EQ(decoded.dispositions.size(), 1u);
  const TestDisposition& out = decoded.dispositions[0];
  EXPECT_EQ(out.kind, d.kind);
  EXPECT_EQ(out.last_flaw, d.last_flaw);
  EXPECT_EQ(out.attempts, d.attempts);
  EXPECT_EQ(out.captures, d.captures);
  // Bit equality, not ==: NaN != NaN but its bits must survive.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(out.outlier_score),
            std::bit_cast<std::uint64_t>(d.outlier_score));
  ASSERT_EQ(out.predicted.size(), d.predicted.size());
  for (std::size_t i = 0; i < d.predicted.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out.predicted[i]),
              std::bit_cast<std::uint64_t>(d.predicted[i]))
        << "spec " << i;
}

TEST(Frame, LotDoneAndRejectRoundTrip) {
  net::LotDone done{11, 24, 20, 3, 1};
  const auto done_bytes = net::encode_lot_done(done);
  const net::LotDone done2 = net::decode_lot_done(
      std::span<const std::uint8_t>(done_bytes).subspan(5));
  EXPECT_EQ(done2.request_id, 11u);
  EXPECT_EQ(done2.lot_size, 24u);
  EXPECT_EQ(done2.predicted, 20u);
  EXPECT_EQ(done2.retried, 3u);
  EXPECT_EQ(done2.routed, 1u);

  net::Reject reject{5, net::RejectCode::kShedOverload, "work queue full"};
  const auto reject_bytes = net::encode_reject(reject);
  const net::Reject reject2 = net::decode_reject(
      std::span<const std::uint8_t>(reject_bytes).subspan(5));
  EXPECT_EQ(reject2.request_id, 5u);
  EXPECT_EQ(reject2.code, net::RejectCode::kShedOverload);
  EXPECT_EQ(reject2.message, "work queue full");
}

TEST(Frame, DecodersRejectMalformedPayloads) {
  // Truncated request payload.
  const auto request = net::encode_request(sample_request());
  EXPECT_THROW(net::decode_request(
                   std::span<const std::uint8_t>(request).subspan(5, 10)),
               net::ProtocolError);
  // Trailing bytes after a complete request.
  std::vector<std::uint8_t> padded(request.begin() + 5, request.end());
  padded.push_back(0);
  EXPECT_THROW(net::decode_request(padded), net::ProtocolError);
  // lot_size of zero and over-limit both refuse.
  net::LotRequest zero = sample_request();
  auto bytes = net::encode_request(zero);
  // lot_size is the u32 at payload offset 16 (after request_id + seed).
  for (int b = 0; b < 4; ++b) bytes[5 + 16 + b] = 0;
  EXPECT_THROW(
      net::decode_request(std::span<const std::uint8_t>(bytes).subspan(5)),
      net::ProtocolError);
  // Unknown reject code.
  auto reject =
      net::encode_reject({1, net::RejectCode::kBadRequest, "x"});
  reject[5 + 8] = 99;
  EXPECT_THROW(
      net::decode_reject(std::span<const std::uint8_t>(reject).subspan(5)),
      net::ProtocolError);
  // LotDone tallies that do not sum.
  auto done = net::encode_lot_done({1, 24, 20, 3, 1});
  done[5 + 12] = 7;  // predicted: 20 -> 7
  EXPECT_THROW(
      net::decode_lot_done(std::span<const std::uint8_t>(done).subspan(5)),
      net::ProtocolError);
}

TEST(FrameReader, ReassemblesByteAtATime) {
  const auto frame_bytes = net::encode_request(sample_request());
  net::FrameReader reader;
  net::Frame frame;
  for (std::size_t i = 0; i + 1 < frame_bytes.size(); ++i) {
    reader.feed(std::span<const std::uint8_t>(&frame_bytes[i], 1));
    EXPECT_FALSE(reader.next(frame)) << "byte " << i;
  }
  reader.feed(std::span<const std::uint8_t>(&frame_bytes.back(), 1));
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, net::FrameType::kRequest);
  EXPECT_EQ(reader.buffered(), 0u);
  const net::LotRequest decoded = net::decode_request(frame.payload);
  EXPECT_EQ(decoded.seed, 9001u);
}

TEST(FrameReader, RejectsOversizedLengthBeforeBufferingThePayload) {
  net::FrameReader reader;
  // Header declaring kMaxPayloadBytes + 1: must throw on feed, with only
  // the 5 header bytes ever buffered -- no allocation for the payload.
  const std::uint32_t declared =
      static_cast<std::uint32_t>(net::kMaxPayloadBytes) + 1;
  std::vector<std::uint8_t> header = {
      static_cast<std::uint8_t>(declared),
      static_cast<std::uint8_t>(declared >> 8),
      static_cast<std::uint8_t>(declared >> 16),
      static_cast<std::uint8_t>(declared >> 24),
      static_cast<std::uint8_t>(net::FrameType::kRequest)};
  EXPECT_THROW(reader.feed(header), net::ProtocolError);
  EXPECT_LE(reader.buffered(), 5u);
}

TEST(FrameReader, RejectsUnknownFrameType) {
  net::FrameReader reader;
  const std::vector<std::uint8_t> header = {0, 0, 0, 0, 99};
  EXPECT_THROW(reader.feed(header), net::ProtocolError);
}

TEST(FrameReader, SplitsBackToBackFrames) {
  const auto a = net::encode_lot_done({1, 4, 4, 0, 0});
  const auto b = net::encode_reject({2, net::RejectCode::kShuttingDown, ""});
  std::vector<std::uint8_t> stream(a);
  stream.insert(stream.end(), b.begin(), b.end());
  net::FrameReader reader;
  reader.feed(stream);
  net::Frame frame;
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, net::FrameType::kLotDone);
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, net::FrameType::kReject);
  EXPECT_FALSE(reader.next(frame));
}

TEST(FrameReader, MaxSizeFrameWithPipelinedTrailingBytesParsesCleanly) {
  // Regression: a peer streaming a max-size-declared frame whose final
  // recv chunk also carries the first bytes of the NEXT frame pushes the
  // buffer past header + max_payload momentarily. That must parse as two
  // frames -- the old bound raised a process-fatal contract violation that
  // escaped the reader thread and terminated the server.
  std::vector<std::uint8_t> big(5 + net::kMaxPayloadBytes, 0);
  const std::uint32_t declared =
      static_cast<std::uint32_t>(net::kMaxPayloadBytes);
  for (int b = 0; b < 4; ++b)
    big[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(declared >> (8 * b));
  big[4] = static_cast<std::uint8_t>(net::FrameType::kDispositions);
  std::vector<std::uint8_t> stream(big);
  const auto trailer = net::encode_lot_done({9, 4, 4, 0, 0});
  stream.insert(stream.end(), trailer.begin(), trailer.end());

  net::FrameReader reader;
  net::Frame frame;
  std::size_t frames = 0;
  std::size_t off = 0;
  while (off < stream.size()) {  // recv-sized chunks, drained after each
    const std::size_t n = std::min<std::size_t>(4096, stream.size() - off);
    reader.feed(std::span<const std::uint8_t>(stream.data() + off, n));
    off += n;
    while (reader.next(frame)) ++frames;
  }
  EXPECT_EQ(frames, 2u);
  EXPECT_EQ(frame.type, net::FrameType::kLotDone);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReader, FeedingPastTheCeilingWithoutDrainingIsATypedDrop) {
  // The memory ceiling still exists, but as a ProtocolError (connection
  // drop), never a contract failure: feeding again while a complete
  // max-size frame sits undrained breaks the drain-after-feed discipline.
  std::vector<std::uint8_t> big(5 + net::kMaxPayloadBytes + 1, 0);
  const std::uint32_t declared =
      static_cast<std::uint32_t>(net::kMaxPayloadBytes);
  for (int b = 0; b < 4; ++b)
    big[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(declared >> (8 * b));
  big[4] = static_cast<std::uint8_t>(net::FrameType::kDispositions);
  net::FrameReader reader;
  reader.feed(big);  // one oversized feed is legal (pipelined trailing byte)
  const std::uint8_t more = 0;
  EXPECT_THROW(reader.feed(std::span<const std::uint8_t>(&more, 1)),
               net::ProtocolError);
}

TEST(Socket, LoopbackSendAllRecvSomeAndEphemeralPorts) {
  net::Listener listener("127.0.0.1", 0);
  ASSERT_NE(listener.port(), 0);  // kernel resolved an ephemeral port
  const auto payload = net::encode_lot_done({3, 8, 8, 0, 0});
  std::thread peer([&] {
    net::Socket client = net::connect_to("127.0.0.1", listener.port(), 2000);
    client.send_all(payload);
  });
  ASSERT_TRUE(listener.wait_acceptable(2000));
  net::Socket accepted = listener.accept_connection();
  ASSERT_TRUE(accepted.valid());
  net::FrameReader reader;
  std::uint8_t buffer[256];
  net::Frame frame;
  while (!reader.next(frame)) {
    ASSERT_TRUE(accepted.wait_readable(2000));
    const std::size_t n = accepted.recv_some(buffer);
    ASSERT_GT(n, 0u);
    reader.feed(std::span<const std::uint8_t>(buffer, n));
  }
  EXPECT_EQ(frame.type, net::FrameType::kLotDone);
  peer.join();
}

TEST(Socket, ConnectToClosedPortFailsTyped) {
  // Bind then immediately close to learn a port nobody listens on.
  std::uint16_t dead_port = 0;
  {
    net::Listener listener("127.0.0.1", 0);
    dead_port = listener.port();
  }
  EXPECT_THROW(net::connect_to("127.0.0.1", dead_port, 500),
               net::SocketError);
  EXPECT_THROW(net::connect_to("not-an-address", 1, 500), net::SocketError);
}

TEST(TransportFaults, ParseGrammarAndDescribe) {
  const auto injector =
      net::TransportFaultInjector::parse("trunc:0.5,disconnect,dup:0.25");
  ASSERT_EQ(injector.faults().size(), 3u);
  EXPECT_EQ(injector.faults()[0].kind,
            net::TransportFaultKind::kTruncateFrame);
  EXPECT_EQ(injector.faults()[0].probability, 0.5);
  EXPECT_EQ(injector.faults()[1].probability, 1.0);
  EXPECT_EQ(injector.describe(),
            "trunc(p=0.5) + disconnect(p=1) + dup(p=0.25)");
  for (const char* bad : {"warp", "trunc:1.5", "trunc:x", ",", "trunc:"})
    EXPECT_THROW(net::TransportFaultInjector::parse(bad),
                 std::invalid_argument)
        << bad;
}

TEST(TransportFaults, PlansAreSeedDeterministicAndConvergeAfterTheCap) {
  const auto injector = net::TransportFaultInjector::parse(
      "trunc:0.5,garbage:0.5,disconnect:0.5,slow:0.5,dup:0.5,oversize:0.5");
  auto plan_of = [&](std::uint64_t seed, int attempt) {
    stats::Rng rng = stats::Rng(seed).derive(1).derive(
        static_cast<std::uint64_t>(attempt));
    return injector.plan_attempt(attempt, rng);
  };
  // Same seed, same plan -- field by field.
  for (int attempt = 1; attempt <= 2; ++attempt) {
    const auto a = plan_of(33, attempt);
    const auto b = plan_of(33, attempt);
    EXPECT_EQ(a.truncate, b.truncate);
    EXPECT_EQ(a.truncate_keep, b.truncate_keep);
    EXPECT_EQ(a.oversize_length, b.oversize_length);
    EXPECT_EQ(a.garbage_bytes, b.garbage_bytes);
    EXPECT_EQ(a.disconnect_mid_lot, b.disconnect_mid_lot);
    EXPECT_EQ(a.slowloris, b.slowloris);
    EXPECT_EQ(a.duplicate_request, b.duplicate_request);
  }
  // Attempts past the cap are clean at ANY seed: that is what guarantees a
  // bounded retry loop converges under every scenario.
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    stats::Rng rng(seed);
    EXPECT_TRUE(injector.plan_attempt(3, rng).clean()) << seed;
  }
}

TEST(Client, BackoffIsCappedExponentialThroughTheInjectableSleep) {
  // A port with no listener: every attempt fails at connect, so the sleep
  // sequence is exactly the backoff schedule.
  std::uint16_t dead_port = 0;
  {
    net::Listener listener("127.0.0.1", 0);
    dead_port = listener.port();
  }
  std::vector<int> sleeps;
  net::ClientOptions options;
  options.max_attempts = 6;
  options.backoff_base_ms = 2;
  options.backoff_cap_ms = 10;
  options.connect_timeout_ms = 200;
  options.sleep_ms = [&sleeps](int ms) { sleeps.push_back(ms); };
  net::SigtestClient client(dead_port, options);
  net::LotRequest request = sample_request();
  request.fault_spec.clear();
  const net::ClientLotResult result = client.run_lot(request);
  EXPECT_EQ(result.status, net::ClientStatus::kTransportFailure);
  EXPECT_EQ(result.attempts, 6);
  // 2, 4, 8, then capped at 10 (one sleep per retry, none after the last).
  EXPECT_EQ(sleeps, (std::vector<int>{2, 4, 8, 10, 10}));
  EXPECT_FALSE(result.message.empty());
}

TEST(Client, LargeBackoffBaseNeverOverflowsTheDoubling) {
  // Regression: base << shift was computed in int, so base >= 2048 at
  // shift 20 (attempt 21) overflowed -- UB, and in practice a negative
  // backoff that silently skipped the sleep. The doubling must saturate at
  // the cap instead, for every attempt.
  std::uint16_t dead_port = 0;
  {
    net::Listener listener("127.0.0.1", 0);
    dead_port = listener.port();
  }
  std::vector<int> sleeps;
  net::ClientOptions options;
  options.max_attempts = 22;  // reaches the shift clamp of 20
  options.backoff_base_ms = 2048;
  options.backoff_cap_ms = 5000;
  options.connect_timeout_ms = 200;
  options.sleep_ms = [&sleeps](int ms) { sleeps.push_back(ms); };
  net::SigtestClient client(dead_port, options);
  net::LotRequest request = sample_request();
  request.fault_spec.clear();
  const net::ClientLotResult result = client.run_lot(request);
  EXPECT_EQ(result.status, net::ClientStatus::kTransportFailure);
  ASSERT_EQ(sleeps.size(), 21u);  // one per retry, including attempt 21
  EXPECT_EQ(sleeps[0], 2048);
  EXPECT_EQ(sleeps[1], 4096);
  for (std::size_t i = 2; i < sleeps.size(); ++i)
    EXPECT_EQ(sleeps[i], 5000) << "retry " << i;
}

}  // namespace
