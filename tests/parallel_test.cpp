// Unit tests for the parallel execution core (core/parallel.hpp): loop
// correctness across grain sizes, deterministic exception propagation,
// nested-loop inlining, and STF_THREADS validation contracts.
#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

using stf::core::parallel_for;
using stf::core::parallel_map;
using stf::core::parse_thread_count;
using stf::core::set_thread_count;
using stf::core::thread_count;

/// Pin the pool width for one test and restore the environment-resolved
/// default afterwards, so tests compose in any order.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t n) { set_thread_count(n); }
  ~ThreadCountGuard() { set_thread_count(0); }
};

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadCountGuard guard(threads);
    for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                                std::size_t{64}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      parallel_for(0, n, [&](std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n;
    }
  }
}

TEST(ParallelFor, RespectsBeginOffsetAndGrain) {
  ThreadCountGuard guard(4);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{3},
                                  std::size_t{100}}) {
    std::vector<int> out(50, 0);
    parallel_for(
        10, 50, [&](std::size_t i) { out[i] = static_cast<int>(i); }, grain);
    for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(out[i], 0);
    for (std::size_t i = 10; i < 50; ++i)
      EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  ThreadCountGuard guard(4);
  bool touched = false;
  parallel_for(5, 5, [&](std::size_t) { touched = true; });
  parallel_for(7, 3, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, ResultsBitIdenticalAcrossThreadCounts) {
  const auto run = [](std::size_t threads) {
    ThreadCountGuard guard(threads);
    std::vector<double> out(257);
    parallel_for(0, out.size(), [&](std::size_t i) {
      double acc = static_cast<double>(i) + 0.5;
      for (int k = 0; k < 50; ++k) acc = acc * 1.0000001 + 1e-9;
      out[i] = acc;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(ParallelFor, PropagatesLowestIndexException) {
  ThreadCountGuard guard(4);
  // Several indices throw; the survivor must always be the lowest one so
  // error reporting does not depend on thread scheduling.
  for (int rep = 0; rep < 5; ++rep) {
    try {
      parallel_for(
          0, 100,
          [](std::size_t i) {
            if (i == 13 || i == 57 || i == 99)
              throw std::runtime_error("boom " + std::to_string(i));
          },
          1);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 13");
    }
  }
}

TEST(ParallelFor, SerialPathPropagatesExceptions) {
  ThreadCountGuard guard(1);
  EXPECT_THROW(parallel_for(0, 10,
                            [](std::size_t i) {
                              if (i == 3) throw std::invalid_argument("bad");
                            }),
               std::invalid_argument);
  // The failed inline loop must not leave the region flag stuck.
  EXPECT_FALSE(stf::core::in_parallel_region());
}

TEST(ParallelFor, NestedLoopsRunInlineWithoutDeadlock) {
  ThreadCountGuard guard(4);
  std::vector<std::atomic<int>> hits(16 * 16);
  parallel_for(0, 16, [&](std::size_t i) {
    EXPECT_TRUE(stf::core::in_parallel_region());
    parallel_for(0, 16, [&](std::size_t j) { ++hits[i * 16 + j]; });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(stf::core::in_parallel_region());
}

TEST(ParallelMap, ReturnsResultsInIndexOrder) {
  ThreadCountGuard guard(4);
  const auto out =
      parallel_map(100, [](std::size_t i) { return 3 * static_cast<int>(i); });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], 3 * static_cast<int>(i));
}

TEST(ParallelConfig, SetThreadCountOverridesAndReports) {
  ThreadCountGuard guard(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1u);
}

TEST(ParallelConfig, ParseAcceptsPlainPositiveIntegers) {
  EXPECT_EQ(parse_thread_count("1"), 1u);
  EXPECT_EQ(parse_thread_count("8"), 8u);
  EXPECT_EQ(parse_thread_count("  16 "), 16u);
  EXPECT_EQ(parse_thread_count("1024"), 1024u);
}

TEST(ParallelConfig, ParseRejectsMalformedValues) {
  for (const char* bad : {"", "   ", "0", "-3", "abc", "4x", "1.5", "1e3",
                          "+4", "99999999999"}) {
    EXPECT_THROW(parse_thread_count(bad), std::invalid_argument)
        << "value: \"" << bad << '"';
  }
}

TEST(ParallelConfig, ParseRejectsValuesThatOverflowSizeT) {
  // Regression: digit accumulation used to wrap on values past 2^64, so
  // e.g. 2^64 + 1 parsed as "1" and silently configured a 1-thread pool.
  for (const char* huge :
       {"18446744073709551616",    // 2^64: wraps to 0
        "18446744073709551617",    // 2^64 + 1: wraps to 1, the nasty case
        "184467440737095516160",   // 10 * 2^64
        "99999999999999999999999999"}) {
    EXPECT_THROW(parse_thread_count(huge), std::invalid_argument)
        << "value: \"" << huge << '"';
  }
}

TEST(ParallelConfig, EnvironmentIsValidatedOnReResolve) {
  // set_thread_count(0) re-reads STF_THREADS: a bad value must throw and
  // leave the previous configuration intact.
  ThreadCountGuard guard(2);
  ASSERT_EQ(setenv("STF_THREADS", "not-a-number", 1), 0);
  EXPECT_THROW(set_thread_count(0), std::invalid_argument);
  EXPECT_EQ(thread_count(), 2u);

  ASSERT_EQ(setenv("STF_THREADS", "5", 1), 0);
  set_thread_count(0);
  EXPECT_EQ(thread_count(), 5u);

  ASSERT_EQ(unsetenv("STF_THREADS"), 0);
  set_thread_count(0);  // back to hardware default for later tests
  EXPECT_GE(thread_count(), 1u);
}

}  // namespace
