// Tests for the SPICE-style netlist parser.
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/ac.hpp"
#include "circuit/dc.hpp"
#include "circuit/parser.hpp"

namespace {

using namespace stf::circuit;

// ---------------------------------------------------------------- numbers --

TEST(SpiceNumber, PlainAndScientific) {
  EXPECT_DOUBLE_EQ(parse_spice_number("42"), 42.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(parse_spice_number("1e-9"), 1e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("2.5E3"), 2500.0);
}

TEST(SpiceNumber, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_number("10p"), 10e-12);
  EXPECT_DOUBLE_EQ(parse_spice_number("4n"), 4e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("3.3u"), 3.3e-6);
  EXPECT_DOUBLE_EQ(parse_spice_number("5m"), 5e-3);
  EXPECT_DOUBLE_EQ(parse_spice_number("4.7k"), 4700.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("2G"), 2e9);
  EXPECT_DOUBLE_EQ(parse_spice_number("1f"), 1e-15);
  EXPECT_DOUBLE_EQ(parse_spice_number("1t"), 1e12);
}

TEST(SpiceNumber, UnitAnnotationsIgnored) {
  EXPECT_DOUBLE_EQ(parse_spice_number("10pF"), 10e-12);
  EXPECT_DOUBLE_EQ(parse_spice_number("4.7kOhm"), 4700.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("1MEGHz"), 1e6);
}

TEST(SpiceNumber, MalformedThrows) {
  EXPECT_THROW(parse_spice_number(""), std::invalid_argument);
  EXPECT_THROW(parse_spice_number("abc"), std::invalid_argument);
  EXPECT_THROW(parse_spice_number("1x"), std::invalid_argument);
}

// ---------------------------------------------------------------- parsing --

TEST(Parser, VoltageDividerRoundTrip) {
  const auto nl = parse_netlist(R"(
* a comment
V1 a 0 DC 10
R1 a b 6k
R2 b 0 4k
.end
)");
  EXPECT_EQ(nl.resistors().size(), 2u);
  EXPECT_EQ(nl.vsources().size(), 1u);
  const auto dc = solve_dc(nl);
  EXPECT_NEAR(dc.voltage(nl.find_node("b")), 4.0, 1e-6);
}

TEST(Parser, AllElementKinds) {
  const auto nl = parse_netlist(R"(
VS in 0 DC 0 AC 1
RS in a 50
C1 a b 10p
L1 b 0 4n
IB 0 a 1m
G1 out 0 a 0 0.02
RL out 0 1k NOISELESS
Q1 c a 0 IS=2e-16 BF=80 VAF=50 RB=30 IKF=0.04
VCC c 0 DC 3
)");
  EXPECT_EQ(nl.capacitors().size(), 1u);
  EXPECT_EQ(nl.inductors().size(), 1u);
  EXPECT_EQ(nl.isources().size(), 1u);
  EXPECT_EQ(nl.vccs().size(), 1u);
  ASSERT_EQ(nl.bjts().size(), 1u);
  EXPECT_DOUBLE_EQ(nl.bjts()[0].params.bf, 80.0);
  EXPECT_DOUBLE_EQ(nl.bjts()[0].params.is, 2e-16);
  EXPECT_DOUBLE_EQ(nl.bjts()[0].params.rb, 30.0);
  // RL marked noiseless, RS noisy by default.
  bool rl_noisy = true, rs_noisy = false;
  for (const auto& r : nl.resistors()) {
    if (r.name == "RL") rl_noisy = r.noisy;
    if (r.name == "RS") rs_noisy = r.noisy;
  }
  EXPECT_FALSE(rl_noisy);
  EXPECT_TRUE(rs_noisy);
  // AC magnitude captured.
  EXPECT_DOUBLE_EQ(nl.vsources()[0].vac.real(), 1.0);
}

TEST(Parser, CommentsAndBlankLines) {
  const auto nl = parse_netlist(
      "* header\n"
      "\n"
      "; another comment style\n"
      "R1 a 0 100 ; trailing comment\n");
  EXPECT_EQ(nl.resistors().size(), 1u);
  EXPECT_DOUBLE_EQ(nl.resistors()[0].r, 100.0);
}

TEST(Parser, DotEndStopsParsing) {
  const auto nl = parse_netlist(
      "R1 a 0 100\n"
      ".end\n"
      "R2 b 0 200\n");
  EXPECT_EQ(nl.resistors().size(), 1u);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_netlist("R1 a 0 100\nX9 what 0 1\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse_netlist("R1 a 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_netlist("Q1 c b e BF\n"), std::invalid_argument);
  EXPECT_THROW(parse_netlist("Q1 c b e ZZ=3\n"), std::invalid_argument);
  EXPECT_THROW(parse_netlist("V1 a 0 DC 1 FOO 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_netlist(".option reltol=1\n"), std::invalid_argument);
}

TEST(Parser, ParsedBjtStageMatchesProgrammaticBuild) {
  // The same CE amplifier written both ways must produce identical DC and
  // AC results.
  const auto parsed = parse_netlist(R"(
VCC vcc 0 DC 3
VS src 0 DC 0 AC 1
RS src nin 50
CC nin b 1u
RB vcc b 100k
RC vcc c 200
Q1 c b 0 IS=1e-16 BF=100 VAF=60 RB=25 IKF=0.05
)");

  Netlist built;
  BjtParams p;
  built.add_vsource("VCC", "vcc", "0", 3.0);
  built.add_vsource("VS", "src", "0", 0.0, {1.0, 0.0});
  built.add_resistor("RS", "src", "nin", 50.0);
  built.add_capacitor("CC", "nin", "b", 1e-6);
  built.add_resistor("RB", "vcc", "b", 100e3);
  built.add_resistor("RC", "vcc", "c", 200.0);
  built.add_bjt("Q1", "c", "b", "0", p);

  const auto dc_a = solve_dc(parsed);
  const auto dc_b = solve_dc(built);
  EXPECT_NEAR(dc_a.voltage(parsed.find_node("c")),
              dc_b.voltage(built.find_node("c")), 1e-9);
  EXPECT_NEAR(dc_a.bjt_op[0].ic, dc_b.bjt_op[0].ic, 1e-12);

  const AcAnalysis ac_a(parsed, dc_a);
  const AcAnalysis ac_b(built, dc_b);
  const auto va = ac_a.solve(10e6);
  const auto vb = ac_b.solve(10e6);
  EXPECT_NEAR(std::abs(va[parsed.find_node("c")]),
              std::abs(vb[built.find_node("c")]), 1e-9);
}

}  // namespace
