// Unit tests for the staged pipeline primitive (core/pipeline.hpp): bounded
// queue FIFO/close/backpressure semantics, per-item stage ordering at 1 and
// 4 threads, inline fallback inside parallel regions, deterministic
// lowest-item exception propagation, and scheduling-independent results.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.hpp"

namespace {

using stf::core::BoundedQueue;
using stf::core::PipelineStage;
using stf::core::PushResult;
using stf::core::run_pipeline;

/// Pin the pool width for one test and restore the environment-resolved
/// default afterwards, so tests compose in any order.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t n) { stf::core::set_thread_count(n); }
  ~ThreadCountGuard() { stf::core::set_thread_count(0); }
};

TEST(BoundedQueue, DeliversItemsInFifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.push(i), PushResult::kAccepted);
  EXPECT_EQ(q.size(), 5u);
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
}

TEST(BoundedQueue, ClosedQueueDrainsThenReturnsFalse) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.push(1), PushResult::kAccepted);
  EXPECT_EQ(q.push(2), PushResult::kAccepted);
  q.close();
  EXPECT_EQ(q.push(3), PushResult::kClosed);  // typed, not a silent drop
  int v = 0;
  ASSERT_TRUE(q.pop(v));  // remaining items still hand out
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.pop(v));  // closed AND drained
}

TEST(BoundedQueue, FullQueueBlocksProducerUntilConsumed) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.push(0), PushResult::kAccepted);
  EXPECT_EQ(q.push(1), PushResult::kAccepted);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    EXPECT_EQ(q.push(2), PushResult::kAccepted);  // blocks: queue is full
    third_pushed = true;
  });
  // The producer must not complete while the queue stays full. (A short
  // sleep cannot prove blocking forever, but a regression to non-blocking
  // push fails this reliably.)
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  int v = -1;
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 0);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_GE(q.blocked_pushes(), 1u);
}

TEST(BoundedQueue, CloseReleasesBlockedProducer) {
  BoundedQueue<int> q(1);
  EXPECT_EQ(q.push(0), PushResult::kAccepted);
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    // Blocked on full, released by close -- and the failure is typed.
    EXPECT_EQ(q.push(1), PushResult::kClosed);
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
  EXPECT_TRUE(returned.load());
}

TEST(BoundedQueue, CloseWakesEveryBlockedProducerWithTypedRejection) {
  // Regression for the shutdown edge: several producers parked in push()
  // on a full queue must ALL wake on close() and ALL get kClosed back;
  // none may hang and none may silently drop its value.
  BoundedQueue<int> q(1);
  EXPECT_EQ(q.push(0), PushResult::kAccepted);
  constexpr int kProducers = 4;
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&q, &rejected, p] {
      if (q.push(100 + p) == PushResult::kClosed) rejected.fetch_add(1);
    });
  // Give the producers a moment to park (cannot prove blocking, but a
  // regression to lost wakeups hangs this join reliably).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(rejected.load(), kProducers);
  // The one pre-close item still drains; nothing pushed after close landed.
  int v = -1;
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_FALSE(q.pop(v));
}

TEST(BoundedQueue, RejectedAfterCloseSurfacesInTelemetry) {
  namespace telemetry = stf::core::telemetry;
  telemetry::set_enabled(true);
  telemetry::reset();
  BoundedQueue<int> q(2);
  q.close();
  EXPECT_EQ(q.push(1), PushResult::kClosed);
  EXPECT_EQ(q.try_push(2), PushResult::kClosed);
  telemetry::set_enabled(false);
  EXPECT_EQ(telemetry::counter("pipeline.rejected_after_close").value(), 2u);
  telemetry::reset();
}

TEST(BoundedQueue, TryPushNeverBlocksAndTypesEveryOutcome) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.try_push(0), PushResult::kAccepted);
  EXPECT_EQ(q.try_push(1), PushResult::kAccepted);
  EXPECT_EQ(q.try_push(2), PushResult::kFull);  // would have blocked
  int v = -1;
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(q.try_push(3), PushResult::kAccepted);
  q.close();
  EXPECT_EQ(q.try_push(4), PushResult::kClosed);
}

TEST(Pipeline, EveryStageSeesEveryItemExactlyOnceInOrder) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadCountGuard guard(threads);
    constexpr std::size_t kItems = 64;
    // progress[i] counts completed stages for item i; each stage asserts the
    // item arrives having finished exactly the stages before it.
    std::vector<std::atomic<int>> progress(kItems);
    std::vector<PipelineStage> stages;
    for (int s = 0; s < 3; ++s) {
      stages.push_back({"pipeline_test.stage", 1, [&progress, s](std::size_t i) {
                          const int seen = progress[i].fetch_add(1);
                          ASSERT_EQ(seen, s) << "item " << i;
                        }});
    }
    run_pipeline(kItems, stages, 4);
    for (std::size_t i = 0; i < kItems; ++i)
      EXPECT_EQ(progress[i].load(), 3) << "threads=" << threads;
  }
}

TEST(Pipeline, ZeroItemsAndSingleStageAreNoOpsThatReturn) {
  ThreadCountGuard guard(4);
  std::atomic<int> calls{0};
  run_pipeline(0, {{"pipeline_test.empty", 2,
                    [&](std::size_t) { ++calls; }}});
  EXPECT_EQ(calls.load(), 0);
  run_pipeline(10, {{"pipeline_test.single", 2,
                     [&](std::size_t) { ++calls; }}});
  EXPECT_EQ(calls.load(), 10);
}

TEST(Pipeline, ResultsAreIdenticalAcrossThreadCounts) {
  auto run = [](std::size_t threads) {
    ThreadCountGuard guard(threads);
    constexpr std::size_t kItems = 48;
    std::vector<double> out(kItems, 0.0);
    std::vector<PipelineStage> stages = {
        {"pipeline_test.a", 2,
         [&](std::size_t i) { out[i] = static_cast<double>(i) + 1.0; }},
        {"pipeline_test.b", 1, [&](std::size_t i) { out[i] *= out[i]; }},
        {"pipeline_test.c", 1, [&](std::size_t i) { out[i] -= 0.5; }},
    };
    run_pipeline(kItems, stages, 3);
    return out;
  };
  const auto serial = run(1);
  const auto threaded = run(4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], threaded[i]) << "item " << i;
}

TEST(Pipeline, RunsInlineInsideParallelRegion) {
  ThreadCountGuard guard(4);
  std::vector<std::atomic<int>> hits(8 * 4);
  stf::core::parallel_for(0, 4, [&](std::size_t outer) {
    run_pipeline(8, {{"pipeline_test.nested", 2, [&](std::size_t i) {
                        EXPECT_TRUE(stf::core::in_parallel_region());
                        ++hits[outer * 8 + i];
                      }}});
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Pipeline, RethrowsLowestItemException) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadCountGuard guard(threads);
    try {
      run_pipeline(32, {{"pipeline_test.throwing", 2, [](std::size_t i) {
                           if (i % 5 == 2)  // items 2, 7, 12, ...
                             throw std::runtime_error("item " +
                                                      std::to_string(i));
                         }}});
      FAIL() << "expected std::runtime_error (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "item 2") << "threads=" << threads;
    }
  }
}

TEST(Pipeline, ExceptionInLaterStageStillDrainsAndJoins) {
  ThreadCountGuard guard(4);
  std::atomic<int> stage0{0};
  std::vector<PipelineStage> stages = {
      {"pipeline_test.ok", 1, [&](std::size_t) { ++stage0; }},
      {"pipeline_test.boom", 1,
       [](std::size_t i) {
         if (i == 0) throw std::logic_error("boom");
       }},
  };
  EXPECT_THROW(run_pipeline(16, stages, 2), std::logic_error);
  // Cancellation may skip work, but the run must have returned with all
  // workers joined (reaching this line at all is the join assertion) and
  // stage 0 must have run at least the throwing item's upstream pass.
  EXPECT_GE(stage0.load(), 1);
}

TEST(Pipeline, RejectsInvalidStageConfigs) {
  EXPECT_THROW(run_pipeline(4, {}), std::invalid_argument);
  EXPECT_THROW(
      run_pipeline(4, {{"pipeline_test.noworkers", 0, [](std::size_t) {}}}),
      std::invalid_argument);
  EXPECT_THROW(run_pipeline(4, {{"pipeline_test.nobody", 1, nullptr}}),
               std::invalid_argument);
  EXPECT_THROW(
      run_pipeline(4, {{"pipeline_test.zerocap", 1, [](std::size_t) {}}}, 0),
      std::invalid_argument);
}

}  // namespace
