// Cross-module property-based tests (parameterized sweeps over random
// instances): invariants that must hold for *every* input, not just the
// hand-picked cases of the unit suites.
#include <cmath>
#include <complex>
#include <numbers>

#include <gtest/gtest.h>

#include "circuit/ac.hpp"
#include "circuit/dc.hpp"
#include "circuit/netlist.hpp"
#include "dsp/fir.hpp"
#include "dsp/iir.hpp"
#include "dsp/pwl.hpp"
#include "dsp/spectrum.hpp"
#include "linalg/lu.hpp"
#include "linalg/svd.hpp"
#include "rf/dut.hpp"
#include "stats/rng.hpp"

namespace {

using namespace stf;

// ------------------------------------------------------ linalg properties --

class MatrixAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(MatrixAlgebra, TransposeOfProduct) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam() % 5);
  la::Matrix a(n, n), b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.normal();
      b(i, j) = rng.normal();
    }
  const la::Matrix lhs = (a * b).transposed();
  const la::Matrix rhs = b.transposed() * a.transposed();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(lhs(i, j), rhs(i, j), 1e-12);
}

TEST_P(MatrixAlgebra, DeterminantIsMultiplicative) {
  stats::Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam() % 4);
  la::Matrix a(n, n), b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.normal();
      b(i, j) = rng.normal();
    }
  const double da = la::LuDecomposition<double>(a).determinant();
  const double db = la::LuDecomposition<double>(b).determinant();
  const double dab = la::LuDecomposition<double>(a * b).determinant();
  EXPECT_NEAR(dab, da * db, 1e-9 * (1.0 + std::abs(da * db)));
}

TEST_P(MatrixAlgebra, SpectralNormBoundsMatVec) {
  stats::Rng rng(static_cast<std::uint64_t>(200 + GetParam()));
  const std::size_t m = 3 + static_cast<std::size_t>(GetParam() % 4);
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam() % 5);
  la::Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  const double s_max = la::svd(a).s.front();
  for (int t = 0; t < 5; ++t) {
    std::vector<double> x(n);
    double xn = 0.0;
    for (auto& v : x) {
      v = rng.normal();
      xn += v * v;
    }
    xn = std::sqrt(xn);
    const auto y = a * x;
    double yn = 0.0;
    for (double v : y) yn += v * v;
    yn = std::sqrt(yn);
    EXPECT_LE(yn, s_max * xn * (1.0 + 1e-9));
  }
}

TEST_P(MatrixAlgebra, DeterminantMagnitudeEqualsSingularValueProduct) {
  stats::Rng rng(static_cast<std::uint64_t>(300 + GetParam()));
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam() % 4);
  la::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  const double det = la::LuDecomposition<double>(a).determinant();
  double prod = 1.0;
  for (double s : la::svd(a).s) prod *= s;
  EXPECT_NEAR(std::abs(det), prod, 1e-9 * (1.0 + prod));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixAlgebra, ::testing::Range(0, 12));

// -------------------------------------------------------- dsp properties --

class ButterworthSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(ButterworthSweep, CutoffAndMonotonicity) {
  const auto [order, fc_frac] = GetParam();
  const double fs = 1.0;
  const double fc = fc_frac * fs;
  const auto f = dsp::butterworth_lowpass(order, fc, fs);
  EXPECT_NEAR(std::abs(f.response(0.0, fs)), 1.0, 1e-9);
  EXPECT_NEAR(20.0 * std::log10(std::abs(f.response(fc, fs))), -3.0103,
              0.02);
  double prev = std::abs(f.response(0.0, fs));
  for (double freq = 0.01 * fs; freq < 0.49 * fs; freq += 0.01 * fs) {
    const double cur = std::abs(f.response(freq, fs));
    EXPECT_LE(cur, prev + 1e-9);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndCutoffs, ButterworthSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 5, 8),
                       ::testing::Values(0.05, 0.1, 0.2)));

class FirLinearPhase : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FirLinearPhase, GroupDelayIsConstant) {
  const std::size_t taps = GetParam();
  const double fs = 1.0;
  const auto h = dsp::design_fir_lowpass(0.2, fs, taps);
  // Symmetric taps -> linear phase -> constant group delay (taps-1)/2.
  const double expected_delay = static_cast<double>(taps - 1) / 2.0;
  double prev_phase = 0.0;
  bool first = true;
  for (double freq = 0.01; freq <= 0.15; freq += 0.01) {
    const auto resp = dsp::fir_response(h, freq, fs);
    const double phase = std::arg(resp);
    if (!first) {
      double dphi = phase - prev_phase;
      while (dphi > std::numbers::pi) dphi -= 2.0 * std::numbers::pi;
      while (dphi < -std::numbers::pi) dphi += 2.0 * std::numbers::pi;
      const double delay = -dphi / (2.0 * std::numbers::pi * 0.01);
      EXPECT_NEAR(delay, expected_delay, 0.05);
    }
    prev_phase = phase;
    first = false;
  }
}

INSTANTIATE_TEST_SUITE_P(TapCounts, FirLinearPhase,
                         ::testing::Values<std::size_t>(11, 21, 31, 63));

TEST(WelchParseval, IntegratedPsdEqualsMeanSquare) {
  // Arbitrary multi-component signal: integral of the PSD recovers the
  // mean-square value (within windowing bias).
  stats::Rng rng(17);
  const double fs = 1000.0;
  std::vector<double> x(8192);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / fs;
    x[i] = 0.4 * std::sin(2.0 * std::numbers::pi * 37.0 * t) +
           0.2 * std::sin(2.0 * std::numbers::pi * 181.0 * t + 0.9) +
           0.05 * rng.normal();
  }
  const std::size_t segment = 512;
  const auto psd = dsp::welch_psd(x, fs, segment);
  double integral = 0.0;
  for (double v : psd) integral += v * fs / static_cast<double>(segment);
  EXPECT_NEAR(integral, dsp::signal_power(x), 0.05 * dsp::signal_power(x));
}

class PwlSampling : public ::testing::TestWithParam<int> {};

TEST_P(PwlSampling, RenderedSamplesMatchPointEvaluation) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n_bp = 3 + static_cast<std::size_t>(GetParam() % 14);
  std::vector<double> values(n_bp);
  for (auto& v : values) v = rng.uniform(-1.0, 1.0);
  const auto w = dsp::PwlWaveform::uniform(1e-3, values);
  const double fs = rng.uniform(5e3, 500e3);
  const auto rendered = w.render(fs);
  for (std::size_t i = 0; i < rendered.size(); i += 7)
    EXPECT_DOUBLE_EQ(rendered[i], w.sample(static_cast<double>(i) / fs));
  // Peak bound: interpolation never exceeds breakpoint extrema.
  for (double v : rendered) EXPECT_LE(std::abs(v), w.peak() + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PwlSampling, ::testing::Range(0, 10));

// ---------------------------------------------------- circuit properties --

// Random passive RC ladder between nodes n1..n5; reciprocity: the transfer
// from a current injection at node a to the voltage at node b equals the
// transfer from b to a (passive networks are reciprocal).
class Reciprocity : public ::testing::TestWithParam<int> {};

TEST_P(Reciprocity, PassiveNetworkIsReciprocal) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()));
  circuit::Netlist nl;
  const char* nodes[] = {"n1", "n2", "n3", "n4", "n5"};
  // Ladder resistors along the chain plus random shunt R/C.
  for (int i = 0; i < 4; ++i)
    nl.add_resistor("R" + std::to_string(i), nodes[i], nodes[i + 1],
                    rng.uniform(10.0, 10e3));
  for (int i = 0; i < 5; ++i) {
    nl.add_resistor("RS" + std::to_string(i), nodes[i], "0",
                    rng.uniform(100.0, 100e3));
    nl.add_capacitor("CS" + std::to_string(i), nodes[i], "0",
                     rng.uniform(1e-12, 1e-9));
  }
  const auto dc = circuit::solve_dc(nl);
  const circuit::AcAnalysis ac(nl, dc);
  const double freq = rng.uniform(1e3, 100e6);

  const circuit::NodeId a = nl.find_node("n1");
  const circuit::NodeId b = nl.find_node("n4");
  const auto va = ac.solve_injections(freq, {{0, a, {1.0, 0.0}}});
  const auto vb = ac.solve_injections(freq, {{0, b, {1.0, 0.0}}});
  const auto t_ab = va[static_cast<std::size_t>(b)];
  const auto t_ba = vb[static_cast<std::size_t>(a)];
  EXPECT_NEAR(std::abs(t_ab - t_ba), 0.0, 1e-9 * (1.0 + std::abs(t_ab)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Reciprocity, ::testing::Range(0, 10));

class PassiveAttenuation : public ::testing::TestWithParam<int> {};

TEST_P(PassiveAttenuation, ResistiveNetworkNeverAmplifies) {
  stats::Rng rng(static_cast<std::uint64_t>(50 + GetParam()));
  circuit::Netlist nl;
  nl.add_vsource("VS", "in", "0", 0.0, {1.0, 0.0});
  nl.add_resistor("R1", "in", "a", rng.uniform(1.0, 10e3));
  nl.add_resistor("R2", "a", "b", rng.uniform(1.0, 10e3));
  nl.add_resistor("R3", "a", "0", rng.uniform(1.0, 10e3));
  nl.add_resistor("R4", "b", "0", rng.uniform(1.0, 10e3));
  const auto dc = circuit::solve_dc(nl);
  const circuit::AcAnalysis ac(nl, dc);
  const auto v = ac.solve(1e6);
  for (std::size_t n = 1; n <= nl.node_count(); ++n)
    EXPECT_LE(std::abs(v[n]), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassiveAttenuation, ::testing::Range(0, 10));

TEST(AcDcConsistency, AcAtNearZeroFrequencyMatchesDcTransfer) {
  // A resistive network's AC response at ~0 Hz equals the incremental DC
  // transfer.
  circuit::Netlist nl;
  nl.add_vsource("VS", "in", "0", 2.0, {1.0, 0.0});
  nl.add_resistor("R1", "in", "mid", 1200.0);
  nl.add_resistor("R2", "mid", "0", 800.0);
  const auto dc = circuit::solve_dc(nl);
  const circuit::AcAnalysis ac(nl, dc);
  const auto v = ac.solve(1e-3);
  EXPECT_NEAR(std::abs(v[nl.find_node("mid")]), 800.0 / 2000.0, 1e-9);
  EXPECT_NEAR(dc.voltage(nl.find_node("mid")), 2.0 * 800.0 / 2000.0, 1e-6);
}

// --------------------------------------------------------- rf properties --

class EnvelopePower : public ::testing::TestWithParam<int> {};

TEST_P(EnvelopePower, IdealGainScalesPowerByGainSquared) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()));
  rf::EnvelopeSignal in;
  in.fs = 1e6;
  in.x.resize(256);
  for (auto& v : in.x) v = rf::Cplx(rng.normal(), rng.normal());
  const rf::Cplx g(rng.normal(), rng.normal());
  rf::IdealGainDut dut(g);
  const auto out = dut.process(in, nullptr);
  EXPECT_NEAR(rf::envelope_power(out),
              std::norm(g) * rf::envelope_power(in),
              1e-9 * std::norm(g) * rf::envelope_power(in));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvelopePower, ::testing::Range(0, 8));

class CompressionMonotone : public ::testing::TestWithParam<int> {};

TEST_P(CompressionMonotone, SaturatingAmAmNeverFoldsOver) {
  // Output amplitude must be non-decreasing in input amplitude -- the
  // property the saturating model was adopted for.
  stats::Rng rng(static_cast<std::uint64_t>(20 + GetParam()));
  const double a_ip3 = rng.uniform(0.05, 1.0);
  rf::BehavioralLna dut({rng.uniform(1.0, 10.0), 0.0}, a_ip3, 0.0);
  double prev = 0.0;
  for (double amp = 0.0; amp <= 5.0 * a_ip3; amp += 0.05 * a_ip3) {
    rf::EnvelopeSignal in;
    in.fs = 1e6;
    in.x = {rf::Cplx(amp, 0.0)};
    const double out = std::abs(dut.process(in, nullptr).x[0]);
    EXPECT_GE(out, prev - 1e-12);
    prev = out;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressionMonotone, ::testing::Range(0, 8));

}  // namespace
