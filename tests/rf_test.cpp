// Tests for the envelope-domain RF module: envelope algebra, behavioral
// DUTs, load board, digitizer, spec measurement, populations.
#include <cmath>
#include <complex>
#include <numbers>

#include <gtest/gtest.h>

#include "circuit/lna900.hpp"
#include "dsp/spectrum.hpp"
#include "rf/dut.hpp"
#include "rf/envelope.hpp"
#include "rf/loadboard.hpp"
#include "rf/population.hpp"
#include "rf/specmeas.hpp"
#include "stats/rng.hpp"

namespace {

using namespace stf::rf;

// ---------------------------------------------------------------- envelope --

TEST(Envelope, FromRealRoundTrip) {
  std::vector<double> samples{0.1, -0.2, 0.3};
  auto env = EnvelopeSignal::from_real(samples, 1e6, 900e6);
  ASSERT_EQ(env.size(), 3u);
  EXPECT_DOUBLE_EQ(env.x[1].real(), -0.2);
  EXPECT_DOUBLE_EQ(env.x[1].imag(), 0.0);
  EXPECT_DOUBLE_EQ(env.duration(), 2e-6);
}

TEST(Envelope, ToRealAtZeroOffsetIsRealPart) {
  EnvelopeSignal env;
  env.fs = 1e6;
  env.fc = 900e6;
  env.x = {{1.0, 2.0}, {-0.5, 0.25}};
  auto r = env.to_real(0.0, 0.0);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], -0.5);
}

TEST(Envelope, ToRealPhaseRotation) {
  EnvelopeSignal env;
  env.fs = 1e6;
  env.fc = 900e6;
  env.x = {{1.0, 0.0}};
  // At phase pi/2 the real projection of 1.0 is cos(pi/2) = 0.
  auto r = env.to_real(0.0, std::numbers::pi / 2.0);
  EXPECT_NEAR(r[0], 0.0, 1e-15);
}

TEST(Envelope, ToRealOffsetCreatesBeat) {
  EnvelopeSignal env;
  env.fs = 1e6;
  env.fc = 900e6;
  env.x.assign(1000, {1.0, 0.0});
  // A constant envelope mixed with a 100 kHz offset becomes a 100 kHz tone.
  auto r = env.to_real(100e3, 0.0);
  EXPECT_NEAR(stf::dsp::tone_amplitude(r, 100e3, 1e6), 1.0, 0.01);
}

TEST(Envelope, PowerOfConstantEnvelope) {
  EnvelopeSignal env;
  env.fs = 1.0;
  env.x.assign(16, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(envelope_power(env), 25.0);
}

// --------------------------------------------------------------------- DUT --

TEST(Dut, IdealGainScales) {
  IdealGainDut dut(Cplx(2.0, 0.0));
  EnvelopeSignal in;
  in.fs = 1e6;
  in.x = {{0.5, 0.0}, {0.0, -1.0}};
  auto out = dut.process(in, nullptr);
  EXPECT_DOUBLE_EQ(out.x[0].real(), 1.0);
  EXPECT_DOUBLE_EQ(out.x[1].imag(), -2.0);
}

TEST(Dut, BehavioralLnaSmallSignalGain) {
  BehavioralLna dut(Cplx(0.0, 5.0), /*iip3_v=*/0.5, /*nf_db=*/3.0);
  EnvelopeSignal in;
  in.fs = 1e6;
  in.x = {{1e-4, 0.0}};  // far below compression
  auto out = dut.process(in, nullptr);
  EXPECT_NEAR(std::abs(out.x[0]), 5.0 * 1e-4, 5e-9);
}

TEST(Dut, CompressionReducesLargeSignalGain) {
  BehavioralLna dut(Cplx(5.0, 0.0), 0.5, 0.0);
  EnvelopeSignal in;
  in.fs = 1e6;
  in.x = {{0.25, 0.0}};  // half the IP3 amplitude
  auto out = dut.process(in, nullptr);
  // Saturating AM/AM: gain factor 1/sqrt(1 + 2 |x|^2/A^2) = 1/sqrt(1.5).
  EXPECT_NEAR(std::abs(out.x[0]), 5.0 * 0.25 / std::sqrt(1.5), 1e-12);
}

TEST(Dut, NoiseOnlyWhenRngProvided) {
  BehavioralLna dut(Cplx(5.0, 0.0), 0.5, 6.0);
  EnvelopeSignal in;
  in.fs = 20e6;
  in.x.assign(512, {0.0, 0.0});
  auto clean = dut.process(in, nullptr);
  for (const auto& v : clean.x) EXPECT_EQ(v, Cplx(0.0, 0.0));
  stf::stats::Rng rng(5);
  auto noisy = dut.process(in, &rng);
  EXPECT_GT(envelope_power(noisy), 0.0);
}

TEST(Dut, HigherNfMeansMoreNoise) {
  EnvelopeSignal in;
  in.fs = 20e6;
  in.x.assign(4096, {0.0, 0.0});
  BehavioralLna quiet(Cplx(5.0, 0.0), 0.5, 1.0);
  BehavioralLna loud(Cplx(5.0, 0.0), 0.5, 10.0);
  stf::stats::Rng rng_a(5), rng_b(5);
  const double p_quiet = envelope_power(quiet.process(in, &rng_a));
  const double p_loud = envelope_power(loud.process(in, &rng_b));
  EXPECT_GT(p_loud, 3.0 * p_quiet);
}

TEST(Dut, InvalidConstructionThrows) {
  EXPECT_THROW(BehavioralLna(Cplx(1.0, 0.0), 0.0, 3.0),
               std::invalid_argument);
  EXPECT_THROW(BehavioralLna(Cplx(1.0, 0.0), 0.5, 3.0, -50.0),
               std::invalid_argument);
}

TEST(Dut, Iip3AmplitudeConversion) {
  // 0 dBm available -> A = sqrt(8 * 50 * 1 mW) = 0.632 V EMF.
  EXPECT_NEAR(iip3_dbm_to_source_amplitude(0.0), std::sqrt(0.4), 1e-12);
}

TEST(Dut, ExtractedLnaMatchesCircuitSpecs) {
  auto ch = extract_lna_dut(stf::circuit::Lna900::nominal());
  // The behavioral gain magnitude must reproduce the circuit's transducer
  // gain through the standard conversion.
  const double gt =
      transducer_gain_db_from_h(std::abs(ch.dut->gain()));
  EXPECT_NEAR(gt, ch.specs.gain_db, 1e-9);
  EXPECT_NEAR(ch.dut->nf_db(), ch.specs.nf_db, 1e-12);
  EXPECT_NEAR(ch.dut->iip3_v(),
              iip3_dbm_to_source_amplitude(ch.specs.iip3_dbm), 1e-12);
}

// --------------------------------------------------------------- load board --

TEST(LoadBoard, GainDeviceScalesStimulus) {
  LoadBoardConfig cfg;
  cfg.lo_offset_hz = 0.0;
  cfg.path_phase_rad = 0.0;
  cfg.up_mixer.conversion_gain_db = 0.0;
  cfg.up_mixer.iip3_dbm = 100.0;  // effectively linear
  cfg.down_mixer = cfg.up_mixer;
  cfg.lpf_cutoff_hz = 10e6;
  LoadBoard board(cfg);
  IdealGainDut dut(Cplx(3.0, 0.0));

  // A slow ramp passes the LPF almost unchanged; output = 3 * input.
  const double fs = 80e6;
  std::vector<double> stim(400);
  for (std::size_t i = 0; i < stim.size(); ++i)
    stim[i] = 0.1 * std::sin(2.0 * std::numbers::pi * 1e6 *
                             static_cast<double>(i) / fs);
  auto out = board.run(stim, fs, dut, nullptr);
  std::vector<double> mid(out.begin() + 100, out.end());
  EXPECT_NEAR(stf::dsp::tone_amplitude(mid, 1e6, fs), 0.3, 0.01);
}

TEST(LoadBoard, Equation4PhaseCancellation) {
  // f1 == f2: signature output scales with cos(phi) and vanishes at
  // phi = pi/2 (the paper's Eq. 4 hazard).
  LoadBoardConfig cfg;
  cfg.lo_offset_hz = 0.0;
  cfg.up_mixer.iip3_dbm = 100.0;
  cfg.down_mixer.iip3_dbm = 100.0;
  IdealGainDut dut(Cplx(2.0, 0.0));
  const double fs = 80e6;
  std::vector<double> stim(400, 0.0);
  for (std::size_t i = 0; i < stim.size(); ++i)
    stim[i] = 0.1 * std::sin(2.0 * std::numbers::pi * 1e6 *
                             static_cast<double>(i) / fs);

  cfg.path_phase_rad = 0.0;
  const auto out0 = LoadBoard(cfg).run(stim, fs, dut, nullptr);
  cfg.path_phase_rad = std::numbers::pi / 2.0;
  const auto out90 = LoadBoard(cfg).run(stim, fs, dut, nullptr);

  const double p0 = stf::dsp::signal_power(out0);
  const double p90 = stf::dsp::signal_power(out90);
  EXPECT_LT(p90, p0 * 1e-6);
}

TEST(LoadBoard, OffsetLoMakesMagnitudePhaseInvariant) {
  // With offset LOs the *energy* of the signature is phase-independent
  // (Eq. 5: phi only rotates the beat).
  LoadBoardConfig cfg;
  cfg.lo_offset_hz = 100e3;
  cfg.up_mixer.iip3_dbm = 100.0;
  cfg.down_mixer.iip3_dbm = 100.0;
  IdealGainDut dut(Cplx(2.0, 0.0));
  const double fs = 80e6;
  // Long capture so the beat averages out.
  std::vector<double> stim(8000, 0.05);

  cfg.path_phase_rad = 0.3;
  const auto out_a = LoadBoard(cfg).run(stim, fs, dut, nullptr);
  cfg.path_phase_rad = 2.1;
  const auto out_b = LoadBoard(cfg).run(stim, fs, dut, nullptr);
  EXPECT_NEAR(stf::dsp::signal_power(out_a), stf::dsp::signal_power(out_b),
              stf::dsp::signal_power(out_a) * 0.02);
}

TEST(LoadBoard, MixerFeedthroughAddsDcOffset) {
  LoadBoardConfig cfg;
  cfg.lo_offset_hz = 0.0;
  cfg.up_mixer.iip3_dbm = 100.0;
  cfg.down_mixer.iip3_dbm = 100.0;
  cfg.down_mixer.lo_feedthrough_v = 0.05;
  LoadBoard board(cfg);
  IdealGainDut dut(Cplx(1.0, 0.0));
  std::vector<double> stim(2000, 0.0);
  auto out = board.run(stim, 80e6, dut, nullptr);
  // After LPF settling the output equals the DC feedthrough.
  EXPECT_NEAR(out.back(), 0.05, 1e-3);
}

TEST(LoadBoard, InvalidRunArgumentsThrow) {
  LoadBoardConfig cfg;
  LoadBoard board(cfg);
  IdealGainDut dut(Cplx(1.0, 0.0));
  EXPECT_THROW(board.run({}, 80e6, dut, nullptr), std::invalid_argument);
  EXPECT_THROW(board.run(std::vector<double>(10, 0.1), 1e6, dut, nullptr),
               std::invalid_argument);  // fs below 2x LPF cutoff
}

// ---------------------------------------------------------------- digitizer --

TEST(Digitizer, ResamplesToCaptureRate) {
  Digitizer dig;
  dig.fs_hz = 20e6;
  dig.noise_rms_v = 0.0;
  std::vector<double> analog(801, 1.0);  // 10 us at 80 MHz
  auto samples = dig.capture(analog, 80e6, nullptr);
  EXPECT_EQ(samples.size(), 201u);  // 10 us at 20 MHz + 1
  EXPECT_DOUBLE_EQ(samples[100], 1.0);
}

TEST(Digitizer, NoiseRequiresRng) {
  Digitizer dig;
  dig.fs_hz = 20e6;
  dig.noise_rms_v = 1e-3;
  std::vector<double> analog(801, 0.0);
  auto clean = dig.capture(analog, 80e6, nullptr);
  for (double v : clean) EXPECT_EQ(v, 0.0);
  stf::stats::Rng rng(3);
  auto noisy = dig.capture(analog, 80e6, &rng);
  double power = 0.0;
  for (double v : noisy) power += v * v;
  power /= static_cast<double>(noisy.size());
  EXPECT_NEAR(std::sqrt(power), 1e-3, 3e-4);
}

TEST(Digitizer, QuantizationSnapsToLsb) {
  Digitizer dig;
  dig.fs_hz = 1e6;
  dig.noise_rms_v = 0.0;
  dig.bits = 3;  // LSB = 1/4 with full scale 1
  dig.full_scale_v = 1.0;
  std::vector<double> analog{0.1, 0.3, 0.9, 5.0, -5.0};
  auto q = dig.capture(analog, 1e6, nullptr);
  EXPECT_DOUBLE_EQ(q[0], 0.0);
  EXPECT_DOUBLE_EQ(q[1], 0.25);
  EXPECT_DOUBLE_EQ(q[3], 1.0);    // clipped
  EXPECT_DOUBLE_EQ(q[4], -1.0);   // clipped
}

// ----------------------------------------------------------------- specmeas --

TEST(SpecMeas, GainOfIdealDut) {
  MeasureConfig cfg;
  IdealGainDut dut(Cplx(0.0, 4.0));  // |H| = 4
  const double expected = transducer_gain_db_from_h(4.0);
  EXPECT_NEAR(measure_gain_db(dut, cfg), expected, 0.01);
}

TEST(SpecMeas, GainConversionRoundTrip) {
  for (double g : {-10.0, 0.0, 12.0, 15.5}) {
    EXPECT_NEAR(transducer_gain_db_from_h(h_mag_from_transducer_gain_db(g)),
                g, 1e-12);
  }
}

TEST(SpecMeas, Iip3OfBehavioralDutMatchesConstruction) {
  const double iip3_dbm = -8.0;
  BehavioralLna dut(Cplx(5.0, 0.0), iip3_dbm_to_source_amplitude(iip3_dbm),
                    0.0);
  MeasureConfig cfg;
  EXPECT_NEAR(measure_iip3_dbm(dut, cfg), iip3_dbm, 0.15);
}

TEST(SpecMeas, NfOfBehavioralDutMatchesConstruction) {
  BehavioralLna dut(Cplx(5.0, 0.0), 1.0, 4.0);
  MeasureConfig cfg;
  stf::stats::Rng rng(11);
  EXPECT_NEAR(measure_nf_db(dut, cfg, rng, 16), 4.0, 0.4);
}

TEST(SpecMeas, P1dbTracksIip3MinusNine) {
  // For the saturating AM/AM model the 1 dB compression point sits at
  // 1/sqrt(1+2r) = 10^(-1/20) -> r = 0.1295 -> P1dB = IIP3 - 8.88 dB.
  const double iip3_dbm = 0.0;
  BehavioralLna dut(Cplx(5.0, 0.0), iip3_dbm_to_source_amplitude(iip3_dbm),
                    0.0);
  MeasureConfig cfg;
  EXPECT_NEAR(measure_p1db_dbm(dut, cfg), iip3_dbm - 8.88, 0.4);
}

TEST(SpecMeas, LinearDutHasNoP1db) {
  IdealGainDut dut(Cplx(2.0, 0.0));
  MeasureConfig cfg;
  EXPECT_THROW(measure_p1db_dbm(dut, cfg), std::runtime_error);
}

TEST(SpecMeas, EnvelopeMeasurementsAgreeWithCircuitSpecs) {
  // The behavioral bridge must hand the conventional envelope tester the
  // same specs the circuit engine computed.
  auto ch = extract_lna_dut(stf::circuit::Lna900::nominal());
  MeasureConfig cfg;
  cfg.level_dbm = -45.0;  // keep the gain tone clear of compression
  EXPECT_NEAR(measure_gain_db(*ch.dut, cfg), ch.specs.gain_db, 0.05);
  cfg.level_dbm = -30.0;
  EXPECT_NEAR(measure_iip3_dbm(*ch.dut, cfg), ch.specs.iip3_dbm, 0.2);
  stf::stats::Rng rng(13);
  EXPECT_NEAR(measure_nf_db(*ch.dut, cfg, rng, 16), ch.specs.nf_db, 0.4);
}

// --------------------------------------------------------------- population --

TEST(Population, LnaPopulationSizeAndVariation) {
  auto devices = make_lna_population(10, 0.2, 1);
  ASSERT_EQ(devices.size(), 10u);
  bool gain_varies = false;
  for (std::size_t i = 1; i < devices.size(); ++i)
    gain_varies |= devices[i].specs.gain_db != devices[0].specs.gain_db;
  EXPECT_TRUE(gain_varies);
  for (const auto& d : devices) {
    EXPECT_EQ(d.process.size(), stf::circuit::Lna900::kNumParams);
    EXPECT_NE(d.dut, nullptr);
  }
}

TEST(Population, LnaPopulationIsSeedDeterministic) {
  auto a = make_lna_population(5, 0.2, 99);
  auto b = make_lna_population(5, 0.2, 99);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(a[i].specs.gain_db, b[i].specs.gain_db);
}

TEST(Population, Rf401PopulationStatistics) {
  Rf401Options opts;
  opts.n = 400;
  auto devices = make_rf401_population(opts, 3);
  ASSERT_EQ(devices.size(), 400u);
  std::vector<double> gain, iip3;
  for (const auto& d : devices) {
    gain.push_back(d.specs.gain_db);
    iip3.push_back(d.specs.iip3_dbm);
  }
  double gm = 0.0;
  for (double g : gain) gm += g;
  gm /= gain.size();
  EXPECT_NEAR(gm, opts.gain_nominal_db, 0.3);
  // Gain and IIP3 share latent factors: they must be correlated.
  double cov = 0.0, vg = 0.0, vi = 0.0, im = 0.0;
  for (double v : iip3) im += v;
  im /= iip3.size();
  for (std::size_t i = 0; i < gain.size(); ++i) {
    cov += (gain[i] - gm) * (iip3[i] - im);
    vg += (gain[i] - gm) * (gain[i] - gm);
    vi += (iip3[i] - im) * (iip3[i] - im);
  }
  EXPECT_GT(cov / std::sqrt(vg * vi), 0.1);
}

TEST(Population, SplitSizesAndErrors) {
  auto devices = make_rf401_population({}, 5);  // default n = 55
  auto split = split_population(devices, 28);
  EXPECT_EQ(split.calibration.size(), 28u);
  EXPECT_EQ(split.validation.size(), 27u);
  EXPECT_THROW(split_population(devices, 0), std::invalid_argument);
  EXPECT_THROW(split_population(devices, 55), std::invalid_argument);
}

}  // namespace
