// Robustness sweeps: the headline result must not depend on the particular
// random population or noise realization baked into the benches, and the
// guarded runtime must hold its contract under every tester fault class
// (clean-path bit-identity, deterministic replay at any thread count,
// strictly fewer escapes than the unguarded runtime, drift-alarm latching).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "circuit/lna900.hpp"
#include "core/parallel.hpp"
#include "rf/faults.hpp"
#include "rf/population.hpp"
#include "sigtest/guard.hpp"
#include "sigtest/optimizer.hpp"
#include "sigtest/outlier.hpp"
#include "sigtest/runtime.hpp"
#include "stats/rng.hpp"

namespace {

using namespace stf;

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t n) { core::set_thread_count(n); }
  ~ThreadCountGuard() { core::set_thread_count(0); }
};

// One shared optimized stimulus (the expensive part).
class SeedRobustness : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static void SetUpTestSuite() {
    const auto cfg = sigtest::SignatureTestConfig::simulation_study();
    sigtest::PerturbationSet perturb(sigtest::lna900_factory(),
                                     circuit::Lna900::nominal(), 0.05);
    sigtest::SignatureAcquirer acq(cfg, 16);
    sigtest::StimulusOptimizerConfig oc;
    oc.encoding.n_breakpoints = 16;
    oc.encoding.duration_s = cfg.capture_s;
    oc.encoding.v_min = -0.45;
    oc.encoding.v_max = 0.45;
    oc.ga.population = 20;
    oc.ga.generations = 10;
    oc.ga.seed = 3;
    stimulus_ = new dsp::PwlWaveform(
        sigtest::optimize_stimulus(perturb, acq, oc).waveform);
  }
  static void TearDownTestSuite() { delete stimulus_; }
  static dsp::PwlWaveform* stimulus_;
};

dsp::PwlWaveform* SeedRobustness::stimulus_ = nullptr;

TEST_P(SeedRobustness, SimStudyQualityHoldsAcrossPopulations) {
  const std::uint64_t seed = GetParam();
  const auto cfg = sigtest::SignatureTestConfig::simulation_study();
  const auto devices = rf::make_lna_population(90, 0.2, seed);
  const auto split = rf::split_population(devices, 70);
  sigtest::FastestRuntime runtime(cfg, *stimulus_,
                                  circuit::LnaSpecs::names());
  stats::Rng rng(seed + 1);
  runtime.calibrate(split.calibration, rng);
  const auto report = runtime.validate(split.validation, rng);
  // Core claims, at every seed: gain & IIP3 strongly predicted, NF worst.
  EXPECT_GT(report.specs[0].r_squared, 0.9) << "gain, seed " << seed;
  EXPECT_GT(report.specs[2].r_squared, 0.9) << "iip3, seed " << seed;
  EXPECT_LT(report.specs[0].std_error, 0.2) << "gain, seed " << seed;
  EXPECT_LT(report.specs[1].r_squared, report.specs[2].r_squared)
      << "NF must stay the hardest spec, seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustness,
                         ::testing::Values<std::uint64_t>(101, 202, 303));

// ---------------------------------------------------------------------------
// Guarded runtime under tester faults. The fixture shares one optimized
// stimulus + calibrated guarded runtime across all fault tests (calibration
// is the expensive part); every test below must leave the runtime unchanged
// (test_device is const; monitor tests copy the runtime first).
class GuardedFaults : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto cfg = sigtest::SignatureTestConfig::simulation_study();
    sigtest::PerturbationSet perturb(sigtest::lna900_factory(),
                                     circuit::Lna900::nominal(), 0.05);
    sigtest::SignatureAcquirer acq(cfg, 16);
    sigtest::StimulusOptimizerConfig oc;
    oc.encoding.n_breakpoints = 16;
    oc.encoding.duration_s = cfg.capture_s;
    oc.encoding.v_min = -0.45;
    oc.encoding.v_max = 0.45;
    oc.ga.population = 20;
    oc.ga.generations = 10;
    oc.ga.seed = 3;
    const auto stimulus = sigtest::optimize_stimulus(perturb, acq, oc).waveform;

    sigtest::GuardPolicy policy;
    policy.outlier_threshold = 2.5;
    guarded_ = new sigtest::GuardedRuntime(cfg, stimulus,
                                           circuit::LnaSpecs::names(), policy);
    unguarded_ = new sigtest::FastestRuntime(cfg, stimulus,
                                             circuit::LnaSpecs::names());
    lot_ = new std::vector<rf::DeviceRecord>(rf::make_lna_population(30, 0.2,
                                                                     77));
    const auto cal = rf::make_lna_population(60, 0.2, 42);
    {
      stats::Rng rng(7);
      guarded_->calibrate(cal, rng);
    }
    {
      stats::Rng rng(7);
      unguarded_->calibrate(cal, rng);
    }
  }
  static void TearDownTestSuite() {
    delete guarded_;
    delete unguarded_;
    delete lot_;
  }

  // All fault classes at bench-like magnitudes, alone and composed.
  static std::vector<rf::FaultInjector> fault_scenarios() {
    using rf::FaultSpec;
    return {
        rf::FaultInjector{{FaultSpec::lo_drift(100e3, 1.2)}},
        rf::FaultInjector{{FaultSpec::clip(0.10)}},
        rf::FaultInjector{{FaultSpec::stuck_sample(0.10)}},
        rf::FaultInjector{{FaultSpec::dropped_sample(0.03)}},
        rf::FaultInjector{{FaultSpec::contact_noise(0.02, 0.05)}},
        rf::FaultInjector{{FaultSpec::baseline_wander(0.05, 300e3)}},
        rf::FaultInjector{{FaultSpec::gain_drift(2e-2)}},
        rf::FaultInjector{{FaultSpec::clip(0.12),
                           FaultSpec::contact_noise(0.01, 0.05),
                           FaultSpec::gain_drift(1e-2)}},
    };
  }

  static std::vector<sigtest::TestDisposition> run_lot(
      const rf::FaultInjector* faults, std::uint64_t seed) {
    std::vector<sigtest::TestDisposition> out;
    stats::Rng rng(seed);
    for (std::size_t i = 0; i < lot_->size(); ++i)
      out.push_back(guarded_->test_device(*(*lot_)[i].dut, rng, faults, i));
    return out;
  }

  static sigtest::GuardedRuntime* guarded_;
  static sigtest::FastestRuntime* unguarded_;
  static std::vector<rf::DeviceRecord>* lot_;
};

sigtest::GuardedRuntime* GuardedFaults::guarded_ = nullptr;
sigtest::FastestRuntime* GuardedFaults::unguarded_ = nullptr;
std::vector<rf::DeviceRecord>* GuardedFaults::lot_ = nullptr;

// With no faults, the guard must be invisible: every device predicted on
// the first attempt with the exact bits the unguarded runtime produces.
TEST_F(GuardedFaults, CleanPathIsBitIdenticalToUnguardedRuntime) {
  stats::Rng rng_off(123);
  const auto on = run_lot(nullptr, 123);
  for (std::size_t i = 0; i < lot_->size(); ++i) {
    const auto off = unguarded_->test_device(*(*lot_)[i].dut, rng_off);
    ASSERT_EQ(on[i].kind, sigtest::DispositionKind::kPredicted)
        << "device " << i;
    EXPECT_EQ(on[i].attempts, 1) << "device " << i;
    EXPECT_EQ(on[i].predicted, off) << "device " << i;  // bitwise
  }
}

// Every fault scenario must replay bit-identically from its seed, alone
// and composed -- the determinism contract of rf/faults.hpp.
TEST_F(GuardedFaults, FaultScenariosReplayBitIdentically) {
  int s = 0;
  for (const auto& faults : fault_scenarios()) {
    const auto a = run_lot(&faults, 900 + s);
    const auto b = run_lot(&faults, 900 + s);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].kind, b[i].kind) << "scenario " << s << " device " << i;
      EXPECT_EQ(a[i].attempts, b[i].attempts)
          << "scenario " << s << " device " << i;
      EXPECT_EQ(a[i].captures, b[i].captures)
          << "scenario " << s << " device " << i;
      EXPECT_EQ(a[i].predicted, b[i].predicted)  // bitwise
          << "scenario " << s << " device " << i;
      EXPECT_EQ(a[i].outlier_score, b[i].outlier_score)
          << "scenario " << s << " device " << i;
    }
    ++s;
  }
}

// Retry counts and dispositions must not depend on STF_THREADS: the guard
// draws all randomness from the caller's Rng, never from thread identity.
TEST_F(GuardedFaults, DispositionsIdenticalAcrossThreadCounts) {
  const auto faults = fault_scenarios()[7];  // composed scenario
  const auto run_at = [&](std::size_t threads) {
    ThreadCountGuard tg(threads);
    return run_lot(&faults, 4242);
  };
  const auto a = run_at(1);
  const auto b = run_at(4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << "device " << i;
    EXPECT_EQ(a[i].attempts, b[i].attempts) << "device " << i;
    EXPECT_EQ(a[i].predicted, b[i].predicted) << "device " << i;
  }
}

// Each fault class alone must trip the guard on a meaningful fraction of
// the lot (the per-class escape-rate table lives in bench/tab_guarded_flow;
// here we assert the validation machinery reacts at all).
TEST_F(GuardedFaults, EveryFaultClassTripsTheGuard) {
  const auto scenarios = fault_scenarios();
  // gain_drift is sequence-driven and below the screen threshold early in
  // the lot by design (the drift monitor owns that class); skip index 6.
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    if (s == 6) continue;
    const auto on = run_lot(&scenarios[s], 31 + s);
    int reacted = 0;
    for (const auto& d : on)
      if (d.attempts > 1 ||
          d.kind == sigtest::DispositionKind::kRoutedToConventional)
        ++reacted;
    EXPECT_GT(reacted, 0) << "scenario " << s;
  }
}

// Guard-on escapes must not exceed guard-off escapes for any fault class
// (strict improvement is demonstrated on the 200-part lot in
// bench/tab_guarded_flow; on this 30-part lot we assert no regression).
TEST_F(GuardedFaults, GuardNeverAddsEscapes) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  struct Limit {
    double lo, hi;
  };
  // gain window + generous nf/iip3, 0.25 dB guard band on predictions.
  const Limit limits[3] = {{14.2, 15.6}, {-kInf, 3.2}, {-14.3, kInf}};
  const double band = 0.25;
  const auto passes = [&](const std::vector<double>& specs, double guard) {
    for (int k = 0; k < 3; ++k)
      if (specs[k] < limits[k].lo + guard || specs[k] > limits[k].hi - guard)
        return false;
    return true;
  };
  const auto scenarios = fault_scenarios();
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    stats::Rng rng_off(77 + s);
    const auto on = run_lot(&scenarios[s], 77 + s);
    int esc_off = 0, esc_on = 0;
    for (std::size_t i = 0; i < lot_->size(); ++i) {
      const bool truly_good = passes((*lot_)[i].specs.to_vector(), 0.0);
      if (truly_good) {
        // Still consume the unguarded draws to stay aligned.
        (void)unguarded_->test_device(*(*lot_)[i].dut, rng_off,
                                      scenarios[s], i);
        continue;
      }
      const auto off =
          unguarded_->test_device(*(*lot_)[i].dut, rng_off, scenarios[s], i);
      if (passes(off, band)) ++esc_off;
      if (on[i].has_prediction() && passes(on[i].predicted, band)) ++esc_on;
    }
    EXPECT_LE(esc_on, esc_off) << "scenario " << s;
  }
}

// A non-finite signature bin must be treated as an outlier, never as
// in-population (regression: NaN propagated through score() used to make
// is_outlier return false and the corrupted capture was predicted).
TEST_F(GuardedFaults, NonFiniteSignatureBinIsAnOutlier) {
  const auto& screen = *guarded_->screen();
  stats::Rng rng(3);
  auto sig = guarded_->runtime().acquirer().acquire(*(*lot_)[0].dut,
                                                    guarded_->runtime()
                                                        .stimulus(),
                                                    &rng);
  ASSERT_TRUE(std::isfinite(screen.score(sig)));
  EXPECT_FALSE(screen.is_outlier(sig, 1e6));
  sig[2] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isinf(screen.score(sig)));
  EXPECT_TRUE(screen.is_outlier(sig, 1e6));
  sig[2] = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(screen.is_outlier(sig, 1e6));
}

// Drift monitor: a slow gain drift must latch the recalibration flag within
// a bounded number of golden checks, a clean chain must never alarm, and
// reset_drift_monitor must clear the latch.
TEST_F(GuardedFaults, DriftMonitorLatchesAndResets) {
  auto monitor = *guarded_;  // copy: the fixture runtime stays pristine
  const auto golden = rf::extract_lna_dut(circuit::Lna900::nominal());
  stats::Rng rng(13);

  // Clean chain: no alarm over many checks.
  for (int c = 0; c < 80; ++c) {
    const auto st = monitor.monitor_golden(*golden.dut, rng);
    EXPECT_FALSE(st.alarm) << "clean check " << c;
  }
  EXPECT_FALSE(monitor.recalibration_needed());

  // Drifting chain: alarm within 120 checks, then stays latched.
  monitor.reset_drift_monitor();
  const rf::FaultInjector drift{{rf::FaultSpec::gain_drift(4e-3)}};
  int alarm_at = -1;
  for (int c = 0; c < 120 && alarm_at < 0; ++c)
    if (monitor
            .monitor_golden(*golden.dut, rng, &drift,
                            static_cast<std::uint64_t>(c))
            .alarm)
      alarm_at = c;
  ASSERT_GE(alarm_at, 0) << "drift never alarmed";
  EXPECT_TRUE(monitor.recalibration_needed());
  // Latched even on a now-clean capture.
  EXPECT_TRUE(monitor.monitor_golden(*golden.dut, rng).alarm);

  monitor.reset_drift_monitor();
  EXPECT_FALSE(monitor.recalibration_needed());
}

// FaultInjector::parse round-trips every fault name and rejects garbage.
TEST(FaultParse, RoundTripAndErrors) {
  const auto inj = rf::FaultInjector::parse(
      "lo:2e3:0.8,clip:0.1,stuck:0.05,drop:0.02,contact:0.02:0.5,"
      "wander:0.05:200e3,gain:2e-3");
  ASSERT_EQ(inj.faults().size(), 7u);
  EXPECT_EQ(inj.faults()[0].kind, rf::FaultKind::kLoDrift);
  EXPECT_DOUBLE_EQ(inj.faults()[0].p1, 2e3);
  EXPECT_DOUBLE_EQ(inj.faults()[0].p2, 0.8);
  EXPECT_EQ(inj.faults()[1].kind, rf::FaultKind::kClip);
  EXPECT_EQ(inj.faults()[6].kind, rf::FaultKind::kGainDrift);
  EXPECT_FALSE(inj.describe().empty());

  EXPECT_THROW(rf::FaultInjector::parse("unknown:1"), std::invalid_argument);
  EXPECT_THROW(rf::FaultInjector::parse("clip"), std::invalid_argument);
  EXPECT_THROW(rf::FaultInjector::parse("clip:abc"), std::invalid_argument);
}

TEST(SeedRobustness2, HardwareStudyQualityHoldsAcrossPopulations) {
  for (std::uint64_t seed : {11ull, 29ull, 47ull}) {
    const auto cfg = sigtest::SignatureTestConfig::hardware_study();
    const auto devices = rf::make_rf401_population({}, seed);
    const auto split = rf::split_population(devices, 28);
    stats::Rng srng(5);
    std::vector<double> bp(64);
    for (auto& v : bp) v = srng.uniform(-0.25, 0.25);
    const auto stim = dsp::PwlWaveform::uniform(cfg.capture_s, bp);
    sigtest::CalibrationOptions co;
    co.ridge_lambda = 1e-1;
    sigtest::FastestRuntime runtime(cfg, stim, circuit::LnaSpecs::names(),
                                    co, 32);
    stats::Rng rng(seed + 7);
    runtime.calibrate(split.calibration, rng);
    const auto report = runtime.validate(split.validation, rng);
    EXPECT_GT(report.specs[0].r_squared, 0.85) << "gain, seed " << seed;
    EXPECT_LT(report.specs[0].rms_error, 0.45) << "gain, seed " << seed;
  }
}

}  // namespace
