// Robustness sweeps: the headline result must not depend on the particular
// random population or noise realization baked into the benches.
#include <gtest/gtest.h>

#include "circuit/lna900.hpp"
#include "rf/population.hpp"
#include "sigtest/optimizer.hpp"
#include "sigtest/runtime.hpp"
#include "stats/rng.hpp"

namespace {

using namespace stf;

// One shared optimized stimulus (the expensive part).
class SeedRobustness : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static void SetUpTestSuite() {
    const auto cfg = sigtest::SignatureTestConfig::simulation_study();
    sigtest::PerturbationSet perturb(sigtest::lna900_factory(),
                                     circuit::Lna900::nominal(), 0.05);
    sigtest::SignatureAcquirer acq(cfg, 16);
    sigtest::StimulusOptimizerConfig oc;
    oc.encoding.n_breakpoints = 16;
    oc.encoding.duration_s = cfg.capture_s;
    oc.encoding.v_min = -0.45;
    oc.encoding.v_max = 0.45;
    oc.ga.population = 20;
    oc.ga.generations = 10;
    oc.ga.seed = 3;
    stimulus_ = new dsp::PwlWaveform(
        sigtest::optimize_stimulus(perturb, acq, oc).waveform);
  }
  static void TearDownTestSuite() { delete stimulus_; }
  static dsp::PwlWaveform* stimulus_;
};

dsp::PwlWaveform* SeedRobustness::stimulus_ = nullptr;

TEST_P(SeedRobustness, SimStudyQualityHoldsAcrossPopulations) {
  const std::uint64_t seed = GetParam();
  const auto cfg = sigtest::SignatureTestConfig::simulation_study();
  const auto devices = rf::make_lna_population(90, 0.2, seed);
  const auto split = rf::split_population(devices, 70);
  sigtest::FastestRuntime runtime(cfg, *stimulus_,
                                  circuit::LnaSpecs::names());
  stats::Rng rng(seed + 1);
  runtime.calibrate(split.calibration, rng);
  const auto report = runtime.validate(split.validation, rng);
  // Core claims, at every seed: gain & IIP3 strongly predicted, NF worst.
  EXPECT_GT(report.specs[0].r_squared, 0.9) << "gain, seed " << seed;
  EXPECT_GT(report.specs[2].r_squared, 0.9) << "iip3, seed " << seed;
  EXPECT_LT(report.specs[0].std_error, 0.2) << "gain, seed " << seed;
  EXPECT_LT(report.specs[1].r_squared, report.specs[2].r_squared)
      << "NF must stay the hardest spec, seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustness,
                         ::testing::Values<std::uint64_t>(101, 202, 303));

TEST(SeedRobustness2, HardwareStudyQualityHoldsAcrossPopulations) {
  for (std::uint64_t seed : {11ull, 29ull, 47ull}) {
    const auto cfg = sigtest::SignatureTestConfig::hardware_study();
    const auto devices = rf::make_rf401_population({}, seed);
    const auto split = rf::split_population(devices, 28);
    stats::Rng srng(5);
    std::vector<double> bp(64);
    for (auto& v : bp) v = srng.uniform(-0.25, 0.25);
    const auto stim = dsp::PwlWaveform::uniform(cfg.capture_s, bp);
    sigtest::CalibrationOptions co;
    co.ridge_lambda = 1e-1;
    sigtest::FastestRuntime runtime(cfg, stim, circuit::LnaSpecs::names(),
                                    co, 32);
    stats::Rng rng(seed + 7);
    runtime.calibrate(split.calibration, rng);
    const auto report = runtime.validate(split.validation, rng);
    EXPECT_GT(report.specs[0].r_squared, 0.85) << "gain, seed " << seed;
    EXPECT_LT(report.specs[0].rms_error, 0.45) << "gain, seed " << seed;
  }
}

}  // namespace
