// End-to-end tests of the signature-test service (service/server.hpp,
// service/admission.hpp, service/scenario.hpp): the CI-gated determinism
// contract -- dispositions streamed over TCP are BIT-identical to the
// in-process serial guarded reference for any client count, interleaving,
// transport fault scenario, retry pattern and STF_THREADS setting -- plus
// typed overload shedding, idempotent replay, bad-request rejection,
// malformed-peer isolation, graceful drain, and the admission/scenario
// units with a synthetic clock.
#include "service/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <clocale>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "circuit/lna900.hpp"
#include "core/parallel.hpp"
#include "dsp/pwl.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/transport_faults.hpp"
#include "rf/faults.hpp"
#include "rf/population.hpp"
#include "service/admission.hpp"
#include "service/registry.hpp"
#include "service/scenario.hpp"
#include "sigtest/batch.hpp"
#include "stats/rng.hpp"
#include "store/calibration_store.hpp"

namespace {

using namespace stf;

constexpr std::uint32_t kLotSize = 24;
constexpr const char* kScenario = "lna:spread=0.2:pop=77";

/// Pin the pool width for one test and restore the environment-resolved
/// default afterwards, so tests compose in any order.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t n) { core::set_thread_count(n); }
  ~ThreadCountGuard() { core::set_thread_count(0); }
};

/// Scoped setenv/unsetenv (for the STF_PORT / STF_MAX_CLIENTS routing).
class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    if (value != nullptr)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~EnvVarGuard() { ::unsetenv(name_.c_str()); }

 private:
  std::string name_;
};

class ServiceTest : public ::testing::Test {
 protected:
  /// One calibrated runtime + the lot the scenario string names, shared by
  /// every test (characterization dominates, so build it once). The lot is
  /// make_lna_population(24, 0.2, 77) -- exactly what the server rebuilds
  /// from kScenario, so in-process references and served lots are the same
  /// physical devices.
  struct World {
    std::shared_ptr<sigtest::BatchRuntime> runtime;
    std::vector<rf::DeviceRecord> lot;

    World()
        : runtime(std::make_shared<sigtest::BatchRuntime>(
              sigtest::SignatureTestConfig::simulation_study(), stimulus(),
              circuit::LnaSpecs::names(), policy(),
              sigtest::BatchOptions{5, 2})),
          lot(rf::make_lna_population(kLotSize, 0.2, 77)) {
      const auto cal = rf::make_lna_population(40, 0.2, 21);
      stats::Rng cal_rng(7);
      runtime->calibrate(cal, cal_rng);
    }

    static dsp::PwlWaveform stimulus() {
      const auto cfg = sigtest::SignatureTestConfig::simulation_study();
      return dsp::PwlWaveform::uniform(
          cfg.capture_s, {0.0, 0.2, -0.2, 0.1, -0.05, 0.2, 0.0, -0.2, 0.1});
    }

    static sigtest::GuardPolicy policy() {
      sigtest::GuardPolicy p;
      p.outlier_threshold = 2.5;
      return p;
    }
  };

  static World& world() {
    static World w;
    return w;
  }

  /// The serial guarded reference of the determinism contract: device i
  /// tested with the derived child stream rng.derive(i), sequence i.
  static std::vector<sigtest::TestDisposition> serial_reference(
      std::uint64_t seed, const rf::FaultInjector* faults) {
    World& w = world();
    const stats::Rng base(seed);
    std::vector<sigtest::TestDisposition> out(w.lot.size());
    for (std::size_t i = 0; i < w.lot.size(); ++i) {
      stats::Rng child = base.derive(i);
      out[i] = w.runtime->guarded().test_device(*w.lot[i].dut, child, faults,
                                                i);
    }
    return out;
  }

  static void expect_identical(
      const std::vector<sigtest::TestDisposition>& reference,
      const std::vector<sigtest::TestDisposition>& served,
      const std::string& label) {
    ASSERT_EQ(reference.size(), served.size()) << label;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const auto& a = reference[i];
      const auto& b = served[i];
      EXPECT_EQ(a.kind, b.kind) << label << " device " << i;
      EXPECT_EQ(a.attempts, b.attempts) << label << " device " << i;
      EXPECT_EQ(a.captures, b.captures) << label << " device " << i;
      EXPECT_EQ(a.last_flaw, b.last_flaw) << label << " device " << i;
      // Bitwise, never approximate: the wire carries raw f64 bits.
      EXPECT_EQ(a.outlier_score, b.outlier_score)
          << label << " device " << i;
      ASSERT_EQ(a.predicted.size(), b.predicted.size())
          << label << " device " << i;
      for (std::size_t s = 0; s < a.predicted.size(); ++s)
        EXPECT_EQ(a.predicted[s], b.predicted[s])
            << label << " device " << i << " spec " << s;
    }
  }

  static service::ServerConfig fast_config() {
    service::ServerConfig config;
    config.poll_interval_ms = 5;
    return config;
  }

  static net::LotRequest request_for(std::uint64_t request_id,
                                     std::uint64_t seed,
                                     const std::string& fault_spec = "") {
    net::LotRequest request;
    request.request_id = request_id;
    request.seed = seed;
    request.lot_size = kLotSize;
    request.batch = 5;
    request.scenario = kScenario;
    request.fault_spec = fault_spec;
    return request;
  }

  static net::ClientOptions quiet_client() {
    net::ClientOptions options;
    options.sleep_ms = [](int) {};  // retries need no real backoff in tests
    options.response_timeout_ms = 30000;
    return options;
  }
};

TEST_F(ServiceTest, SingleClientMatchesSerialReferenceAtBothThreadCounts) {
  const auto clean_reference = serial_reference(9001, nullptr);
  const auto faults = rf::FaultInjector::parse("clip:0.12,contact:0.05:0.05");
  const auto faulted_reference = serial_reference(9001, &faults);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadCountGuard guard(threads);
    service::SigtestServer server(world().runtime, fast_config());
    server.start();
    net::SigtestClient client(server.port(), quiet_client());

    const auto clean = client.run_lot(request_for(1, 9001));
    ASSERT_EQ(clean.status, net::ClientStatus::kOk) << clean.message;
    EXPECT_EQ(clean.attempts, 1);
    expect_identical(clean_reference, clean.dispositions,
                     "clean t" + std::to_string(threads));
    EXPECT_EQ(clean.predicted + clean.retried + clean.routed, kLotSize);

    const auto faulted =
        client.run_lot(request_for(2, 9001, "clip:0.12,contact:0.05:0.05"));
    ASSERT_EQ(faulted.status, net::ClientStatus::kOk) << faulted.message;
    expect_identical(faulted_reference, faulted.dispositions,
                     "faulted t" + std::to_string(threads));
    server.stop();
  }
}

TEST_F(ServiceTest, ConcurrentClientsAreBitIdenticalAtAnyInterleaving) {
  // A mix of duplicate and distinct seeds across 4 then 8 concurrent
  // clients: interleaving on the shared runtime and queue must not leak
  // between lots.
  const std::uint64_t seeds[3] = {9001, 424242, 7};
  std::vector<std::vector<sigtest::TestDisposition>> references;
  for (const std::uint64_t seed : seeds)
    references.push_back(serial_reference(seed, nullptr));
  for (const std::size_t n_clients : {std::size_t{4}, std::size_t{8}}) {
    ThreadCountGuard guard(4);
    service::ServerConfig config = fast_config();
    config.work_queue_capacity = 16;  // no shedding in this test
    config.admission.per_client_inflight_cap = 4;
    service::SigtestServer server(world().runtime, config);
    server.start();
    std::vector<net::ClientLotResult> results(n_clients);
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < n_clients; ++c)
      clients.emplace_back([&, c] {
        net::SigtestClient client(server.port(), quiet_client());
        results[c] =
            client.run_lot(request_for(100 + c, seeds[c % 3]));
      });
    for (std::thread& t : clients) t.join();
    for (std::size_t c = 0; c < n_clients; ++c) {
      ASSERT_EQ(results[c].status, net::ClientStatus::kOk)
          << "client " << c << ": " << results[c].message;
      expect_identical(references[c % 3], results[c].dispositions,
                       "client " + std::to_string(c));
    }
    server.stop();
  }
}

TEST_F(ServiceTest, TransportFaultsWithRetriesStayBitIdentical) {
  // Every transport fault class armed at once, at both thread counts. The
  // server sees truncated frames, garbage, oversized lengths, duplicated
  // requests, slowloris dribbles and mid-lot disconnects -- and the final
  // dispositions must still be the serial reference, bit for bit.
  const auto reference = serial_reference(31337, nullptr);
  const auto transport_faults = net::TransportFaultInjector::parse(
      "trunc:0.5,oversize:0.5,garbage:0.5,disconnect:0.5,slow:0.5,dup:0.5");
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadCountGuard guard(threads);
    service::SigtestServer server(world().runtime, fast_config());
    server.start();
    constexpr std::size_t kClients = 4;
    std::vector<net::ClientLotResult> results(kClients);
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c)
      clients.emplace_back([&, c] {
        net::SigtestClient client(server.port(), quiet_client());
        client.set_transport_faults(&transport_faults, 555 + c);
        results[c] = client.run_lot(request_for(200 + c, 31337));
      });
    for (std::thread& t : clients) t.join();
    int total_attempts = 0;
    for (std::size_t c = 0; c < kClients; ++c) {
      ASSERT_EQ(results[c].status, net::ClientStatus::kOk)
          << "client " << c << ": " << results[c].message;
      expect_identical(reference, results[c].dispositions,
                       "faulted client " + std::to_string(c));
      total_attempts += results[c].attempts;
    }
    // The scenario must actually bite, or the equivalence proves nothing.
    EXPECT_GT(total_attempts, static_cast<int>(kClients))
        << "no transport fault ever forced a retry";
    server.stop();
  }
}

TEST_F(ServiceTest, DuplicateRequestIdReplaysInsteadOfRecomputing) {
  ThreadCountGuard guard(4);
  service::SigtestServer server(world().runtime, fast_config());
  server.start();
  net::SigtestClient client(server.port(), quiet_client());
  const auto first = client.run_lot(request_for(77, 9001));
  ASSERT_EQ(first.status, net::ClientStatus::kOk) << first.message;
  // Same request again (a client-level retry after a lost response): the
  // server must replay its cached frames, not burn a second computation.
  const auto second = client.run_lot(request_for(77, 9001));
  ASSERT_EQ(second.status, net::ClientStatus::kOk) << second.message;
  expect_identical(first.dispositions, second.dispositions, "replay");
  // Counter is final once stop() has joined the workers: one computation.
  server.stop();
  EXPECT_EQ(server.lots_completed(), 1u) << "replay recomputed the lot";
}

TEST_F(ServiceTest, OverloadShedsTypedAndAdmittedLotsStillComplete) {
  ThreadCountGuard guard(4);
  service::ServerConfig config = fast_config();
  // Token bucket with a 2-lot burst and (practically) no refill: exactly
  // two of the eight concurrent lots are admitted, six get a typed shed.
  config.admission.lots_per_second = 1e-9;
  config.admission.burst_lots = 2.0;
  config.work_queue_capacity = 8;
  service::SigtestServer server(world().runtime, config);
  server.start();
  const auto reference = serial_reference(9001, nullptr);
  constexpr std::size_t kClients = 8;
  std::vector<net::ClientLotResult> results(kClients);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      net::SigtestClient client(server.port(), quiet_client());
      results[c] = client.run_lot(request_for(300 + c, 9001));
    });
  for (std::thread& t : clients) t.join();
  std::size_t oks = 0;
  std::size_t sheds = 0;
  for (std::size_t c = 0; c < kClients; ++c) {
    if (results[c].status == net::ClientStatus::kOk) {
      ++oks;
      expect_identical(reference, results[c].dispositions,
                       "admitted client " + std::to_string(c));
    } else {
      ASSERT_EQ(results[c].status, net::ClientStatus::kRejected)
          << "client " << c << " got an untyped failure: "
          << results[c].message;
      EXPECT_EQ(results[c].reject_code, net::RejectCode::kShedOverload)
          << "client " << c;
      ++sheds;
    }
  }
  EXPECT_EQ(oks, 2u);
  EXPECT_EQ(sheds, kClients - 2);
  // Counter is final once stop() has joined the workers.
  server.stop();
  EXPECT_EQ(server.lots_completed(), 2u);
}

TEST_F(ServiceTest, ConnectionCapRefusesTyped) {
  ThreadCountGuard guard(1);
  service::ServerConfig config = fast_config();
  config.admission.max_clients = 1;
  service::SigtestServer server(world().runtime, config);
  server.start();
  // Occupy the single slot with a raw idle connection...
  net::Socket occupier = net::connect_to("127.0.0.1", server.port(), 2000);
  // ...give the accept loop a beat to admit it...
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // ...then a real client must get the typed refusal, not a hang.
  net::ClientOptions options = quiet_client();
  options.max_attempts = 1;
  net::SigtestClient client(server.port(), options);
  const auto result = client.run_lot(request_for(1, 9001));
  ASSERT_EQ(result.status, net::ClientStatus::kRejected) << result.message;
  EXPECT_EQ(result.reject_code, net::RejectCode::kTooManyClients);
  occupier.close();
  server.stop();
}

TEST_F(ServiceTest, ExitedSessionsReaderThreadsAreReapedWhileRunning) {
  ThreadCountGuard guard(1);
  service::SigtestServer server(world().runtime, fast_config());
  server.start();
  // Several short-lived sessions: one real lot plus a handful of idle
  // connects that close immediately. Their reader threads must be joined
  // by the running accept loop -- regression: handles (and stacks) of
  // long-gone sessions accumulated without bound until stop().
  {
    net::SigtestClient client(server.port(), quiet_client());
    const auto result = client.run_lot(request_for(700, 9001));
    ASSERT_EQ(result.status, net::ClientStatus::kOk) << result.message;
  }
  for (int c = 0; c < 4; ++c) {
    net::Socket idle = net::connect_to("127.0.0.1", server.port(), 2000);
  }  // closed here: each session's reader sees EOF and exits
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.reader_threads() != 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(server.reader_threads(), 0u);
  EXPECT_TRUE(server.running());  // reaping happened in flight, not in stop
  server.stop();
}

TEST_F(ServiceTest, BadRequestsAreTypedAndNeverKillTheServer) {
  ThreadCountGuard guard(1);
  service::SigtestServer server(world().runtime, fast_config());
  server.start();
  net::SigtestClient client(server.port(), quiet_client());

  net::LotRequest bad_scenario = request_for(1, 9001);
  bad_scenario.scenario = "warp:spread=0.2";
  const auto r1 = client.run_lot(bad_scenario);
  ASSERT_EQ(r1.status, net::ClientStatus::kRejected);
  EXPECT_EQ(r1.reject_code, net::RejectCode::kBadRequest);
  EXPECT_NE(r1.message.find("warp"), std::string::npos);

  net::LotRequest bad_faults = request_for(2, 9001);
  bad_faults.fault_spec = "bogus:1";
  const auto r2 = client.run_lot(bad_faults);
  ASSERT_EQ(r2.status, net::ClientStatus::kRejected);
  EXPECT_EQ(r2.reject_code, net::RejectCode::kBadRequest);

  // Malformed bytes on a raw connection: that connection dies, the server
  // does not.
  {
    net::Socket raw = net::connect_to("127.0.0.1", server.port(), 2000);
    const std::vector<std::uint8_t> garbage = {0xFF, 0xFF, 0xFF, 0xFF, 0x01};
    raw.send_all(garbage);
    std::uint8_t buffer[64];
    // The server drops us: orderly EOF (or a reset surfaced as an error).
    try {
      ASSERT_TRUE(raw.wait_readable(2000));
      EXPECT_EQ(raw.recv_some(buffer), 0u);
    } catch (const net::SocketError&) {
    }
  }
  const auto alive = client.run_lot(request_for(3, 9001));
  ASSERT_EQ(alive.status, net::ClientStatus::kOk) << alive.message;
  server.stop();
}

TEST_F(ServiceTest, GracefulStopDrainsAdmittedLotsWithoutLossOrDuplication) {
  ThreadCountGuard guard(4);
  service::ServerConfig config = fast_config();
  config.work_queue_capacity = 8;
  config.worker_threads = 1;  // an actual backlog forms
  service::SigtestServer server(world().runtime, config);
  server.start();
  constexpr std::size_t kClients = 6;
  std::vector<net::ClientLotResult> results(kClients);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      net::ClientOptions options = quiet_client();
      options.max_attempts = 1;
      options.response_timeout_ms = 30000;
      net::SigtestClient client(server.port(), options);
      results[c] = client.run_lot(request_for(400 + c, 9001));
    });
  // Stop while the backlog is (very likely) still draining: admitted lots
  // must complete and flush; late requests get typed answers or EOF.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.stop();
  for (std::thread& t : clients) t.join();
  const auto reference = serial_reference(9001, nullptr);
  std::size_t oks = 0;
  for (std::size_t c = 0; c < kClients; ++c) {
    switch (results[c].status) {
      case net::ClientStatus::kOk:
        ++oks;
        expect_identical(reference, results[c].dispositions,
                         "drained client " + std::to_string(c));
        break;
      case net::ClientStatus::kRejected:
        EXPECT_TRUE(
            results[c].reject_code == net::RejectCode::kShuttingDown ||
            results[c].reject_code == net::RejectCode::kShedOverload)
            << "client " << c;
        break;
      case net::ClientStatus::kTransportFailure:
        break;  // request never admitted; typed at the client
    }
  }
  // Every admitted lot completed (lots_completed counts flushes) and no
  // client saw a duplicated or partial disposition set (expect_identical
  // above plus the client's all-slots-filled check).
  EXPECT_EQ(server.lots_completed(), oks);
}

TEST_F(ServiceTest, ServerConfigRoutesStfPortAndMaxClients) {
  {
    const EnvVarGuard port("STF_PORT", "45123");
    const EnvVarGuard clients("STF_MAX_CLIENTS", "3");
    const auto config = service::ServerConfig::from_environment();
    EXPECT_EQ(config.port, 45123);
    EXPECT_EQ(config.admission.max_clients, 3u);
  }
  {
    const EnvVarGuard port("STF_PORT", "70000");  // > 65535
    EXPECT_THROW(service::ServerConfig::from_environment(),
                 std::invalid_argument);
  }
  {
    const EnvVarGuard clients("STF_MAX_CLIENTS", "0");
    EXPECT_THROW(service::ServerConfig::from_environment(),
                 std::invalid_argument);
  }
}

TEST(AdmissionTest, TokenBucketIsDeterministicUnderASyntheticClock) {
  service::TokenBucket bucket(2.0, 2.0);  // 2 lots/s, burst 2
  EXPECT_TRUE(bucket.try_acquire(0));
  EXPECT_TRUE(bucket.try_acquire(0));
  EXPECT_FALSE(bucket.try_acquire(0));        // burst exhausted
  EXPECT_FALSE(bucket.try_acquire(400'000));  // 0.4 s -> 0.8 tokens: still no
  EXPECT_TRUE(bucket.try_acquire(600'000));   // 1.2 tokens accumulated
  EXPECT_FALSE(bucket.try_acquire(600'000));
  // Disabled gate admits forever.
  service::TokenBucket open_bucket(0.0, 8.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(open_bucket.try_acquire(0));
}

// Regression: a clock that steps backwards (NTP correction, VM migration)
// must not inflate the refill. The buggy bucket re-anchored last_us_ on
// the rewound timestamp, so once the clock recovered the whole rewind
// distance was credited as freshly elapsed time -- phantom tokens.
TEST(AdmissionTest, TokenBucketClockRewindMintsNoPhantomTokens) {
  service::TokenBucket bucket(1.0, 1.0);  // 1 lot/s, burst 1
  EXPECT_TRUE(bucket.try_acquire(1'000'000));  // burst token at t = 1 s
  EXPECT_FALSE(bucket.try_acquire(0));         // clock rewinds: no refill
  // Clock recovers. Real elapsed time since the grant is 0.9 s -> 0.9
  // tokens; the bug saw 1.9 s "elapsed" from the rewound anchor and
  // admitted here.
  EXPECT_FALSE(bucket.try_acquire(1'900'000));
  // A genuine full second since the grant does refill.
  EXPECT_TRUE(bucket.try_acquire(2'000'001));
  // Repeated rewinds while draining never accumulate credit.
  service::TokenBucket strict(1.0, 1.0);
  EXPECT_TRUE(strict.try_acquire(5'000'000));
  for (int i = 0; i < 10; ++i)
    EXPECT_FALSE(strict.try_acquire(4'000'000 - 100'000 * i));
  EXPECT_FALSE(strict.try_acquire(5'500'000));
  EXPECT_TRUE(strict.try_acquire(6'000'000));
}

TEST(AdmissionTest, PerClientCapAndClientSlotsAreTypedAndReleasable) {
  service::AdmissionPolicy policy;
  policy.per_client_inflight_cap = 2;
  policy.max_clients = 2;
  service::AdmissionController admission(policy);
  EXPECT_TRUE(admission.try_admit_client());   // client 1
  EXPECT_TRUE(admission.try_admit_client());   // client 2
  EXPECT_FALSE(admission.try_admit_client());  // cap
  EXPECT_EQ(admission.admit_lot(1, 0), net::RejectCode::kNone);
  EXPECT_EQ(admission.admit_lot(1, 0), net::RejectCode::kNone);
  EXPECT_EQ(admission.admit_lot(1, 0), net::RejectCode::kShedOverload);
  EXPECT_EQ(admission.admit_lot(2, 0), net::RejectCode::kNone);
  EXPECT_EQ(admission.inflight(), 3u);
  admission.complete_lot(1);
  EXPECT_EQ(admission.admit_lot(1, 0), net::RejectCode::kNone);
  admission.complete_lot(1);
  admission.complete_lot(1);
  admission.complete_lot(2);
  EXPECT_EQ(admission.inflight(), 0u);
  admission.release_client(1);
  EXPECT_TRUE(admission.try_admit_client());  // the slot came back
}

TEST(ScenarioTest, ParsesTheGrammarAndRejectsGarbageTyped) {
  const auto defaults = service::parse_scenario("lna");
  EXPECT_EQ(defaults.spread, 0.2);
  EXPECT_EQ(defaults.pop_seed, 77u);
  const auto spec = service::parse_scenario("lna:pop=123:spread=0.1");
  EXPECT_EQ(spec.spread, 0.1);
  EXPECT_EQ(spec.pop_seed, 123u);
  EXPECT_EQ(spec.canonical(), "lna:spread=0.1:pop=123");
  for (const char* bad :
       {"", "warp", "lna:spread=2", "lna:spread=x", "lna:pop=-1",
        "lna:mystery=1", "lna:spread"})
    EXPECT_THROW(service::parse_scenario(bad), std::invalid_argument) << bad;
}

// Regression: spread parsing used std::stod, which honors the process
// locale -- under a comma-decimal locale (de_DE) every canonical()
// string, always '.'-formatted, failed to re-parse. std::from_chars is
// locale-independent and must round-trip every canonical form bitwise.
TEST(ScenarioTest, SpreadParsingIsLocaleIndependentAndRoundTripsCanonical) {
  for (const double spread :
       {0.0, 1e-3, 0.1, 0.2, 0.25, 1.0 / 3.0, 0.5, 0.875, 0.9999}) {
    service::ScenarioSpec spec;
    spec.spread = spread;
    spec.pop_seed = 9;
    const auto parsed = service::parse_scenario(spec.canonical());
    EXPECT_EQ(parsed.spread, spread) << spec.canonical();  // bitwise
    EXPECT_EQ(parsed.canonical(), spec.canonical());
  }
  // Under a comma-decimal locale the grammar must behave identically:
  // '.' parses, ',' is rejected. Skipped when the locale is not installed.
  if (std::setlocale(LC_ALL, "de_DE.UTF-8") == nullptr &&
      std::setlocale(LC_ALL, "de_DE.utf8") == nullptr)
    GTEST_SKIP() << "no de_DE locale installed";
  EXPECT_EQ(service::parse_scenario("lna:spread=0.25").spread, 0.25);
  EXPECT_THROW(service::parse_scenario("lna:spread=0,25"),
               std::invalid_argument);
  std::setlocale(LC_ALL, "C");
}

TEST(ScenarioTest, PopulationCacheHitsReturnTheSamePopulation) {
  service::PopulationCache cache(2);
  const auto spec = service::parse_scenario("lna:spread=0.05:pop=5");
  const auto a = cache.get(spec, 4);
  const auto b = cache.get(spec, 4);
  EXPECT_EQ(a.get(), b.get()) << "second lookup must hit";
  EXPECT_EQ(a->size(), 4u);
  // Distinct device count is a distinct population.
  const auto c = cache.get(spec, 5);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.size(), 2u);
  // Eviction keeps the cache bounded; the evicted population survives
  // through the shared_ptr still held here.
  const auto spec2 = service::parse_scenario("lna:spread=0.06:pop=5");
  (void)cache.get(spec2, 4);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(a->size(), 4u);
}

/// The World's exact runtime recipe expressed as registry options, so a
/// registry-resolved runtime for kScenario is fit from the identical
/// inputs and serial_reference() applies to it unchanged.
service::RegistryOptions world_registry_options() {
  auto options = service::RegistryOptions::lna_defaults();
  options.batch = sigtest::BatchOptions{5, 2};
  return options;
}

TEST_F(ServiceTest, RegistryServerMatchesSerialReferenceAndAddsScenarios) {
  const auto reference = serial_reference(9001, nullptr);
  auto registry =
      std::make_shared<service::RuntimeRegistry>(world_registry_options());
  service::SigtestServer server(registry, fast_config());
  server.start();
  net::SigtestClient client(server.port(), quiet_client());

  const auto served = client.run_lot(request_for(1, 9001));
  ASSERT_EQ(served.status, net::ClientStatus::kOk) << served.message;
  expect_identical(reference, served.dispositions, "registry-resolved");
  EXPECT_EQ(registry->scratch_calibrations(), 1u);

  // A scenario the server has never seen gets its own runtime on demand --
  // no restart, no operator, typed failure modes only.
  auto request = request_for(2, 424242);
  request.scenario = "lna:spread=0.1:pop=5";
  const auto other = client.run_lot(request);
  ASSERT_EQ(other.status, net::ClientStatus::kOk) << other.message;
  EXPECT_EQ(other.predicted + other.retried + other.routed, kLotSize);
  EXPECT_EQ(registry->size(), 2u);
  EXPECT_EQ(registry->scratch_calibrations(), 2u);
  server.stop();
}

TEST(RegistryTest, ColdStartsFromTheStoreInsteadOfRefitting) {
  namespace fs = std::filesystem;
  const std::string root =
      (fs::temp_directory_path() /
       ("stf_registry_test_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(root);

  auto options = service::RegistryOptions::lna_defaults();
  options.calibration_devices = 12;  // keep the scratch fit cheap
  const auto spec = service::parse_scenario("lna:spread=0.2:pop=77");

  // First boot: no persisted version exists, so the registry fits from
  // scratch and persists version 1.
  service::RuntimeRegistry first(
      options, std::make_shared<stf::store::CalibrationStore>(root));
  const auto fitted = first.get(spec);
  EXPECT_EQ(first.scratch_calibrations(), 1u);
  EXPECT_EQ(first.cold_starts(), 0u);
  EXPECT_EQ(first.store()->latest_version(first.store_key(spec)), 1u);
  (void)first.get(spec);  // LRU hit: no second fit
  EXPECT_EQ(first.scratch_calibrations(), 1u);

  // "Restart": a fresh registry + store over the same root must load the
  // persisted calibration instead of re-characterizing.
  service::RuntimeRegistry second(
      options, std::make_shared<stf::store::CalibrationStore>(root));
  const auto loaded = second.get(spec);
  EXPECT_EQ(second.cold_starts(), 1u);
  EXPECT_EQ(second.scratch_calibrations(), 0u);

  // And the loaded runtime is the fitted one, bit for bit.
  const auto lot = service::build_population(spec, 8);
  const auto a = fitted->test_lot(lot, stats::Rng(5));
  const auto b = loaded->test_lot(lot, stats::Rng(5));
  EXPECT_EQ(a.model_version, 1u);
  EXPECT_EQ(b.model_version, 1u);
  ASSERT_EQ(a.dispositions.size(), b.dispositions.size());
  for (std::size_t i = 0; i < a.dispositions.size(); ++i) {
    EXPECT_EQ(a.dispositions[i].kind, b.dispositions[i].kind) << i;
    EXPECT_EQ(a.dispositions[i].outlier_score, b.dispositions[i].outlier_score)
        << i;
    ASSERT_EQ(a.dispositions[i].predicted.size(),
              b.dispositions[i].predicted.size());
    for (std::size_t s = 0; s < a.dispositions[i].predicted.size(); ++s)
      EXPECT_EQ(a.dispositions[i].predicted[s], b.dispositions[i].predicted[s])
          << "device " << i << " spec " << s;
  }
  fs::remove_all(root);
}

}  // namespace
