// Tests for the signature-test core: acquisition, sensitivity, the
// Eq. 8-10 objective, calibration regression.
#include <cmath>
#include <cstring>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "circuit/lna900.hpp"
#include "rf/dut.hpp"
#include "sigtest/acquisition.hpp"
#include "sigtest/calibration.hpp"
#include "sigtest/objective.hpp"
#include "sigtest/optimizer.hpp"
#include "sigtest/sensitivity.hpp"
#include "stats/rng.hpp"

namespace {

using namespace stf::sigtest;
using stf::rf::Cplx;

stf::dsp::PwlWaveform test_stimulus(double duration, double amp = 0.2) {
  return stf::dsp::PwlWaveform::uniform(
      duration, {0.0, amp, -amp, amp / 2.0, -amp / 2.0, amp, 0.0, -amp, 0.0});
}

// ------------------------------------------------------------- acquisition --

TEST(Acquisition, SignatureLengthMatchesAcquire) {
  const auto cfg = SignatureTestConfig::simulation_study();
  SignatureAcquirer acq(cfg, 16);
  stf::rf::IdealGainDut dut(Cplx(2.0, 0.0));
  const auto sig = acq.acquire(dut, test_stimulus(cfg.capture_s), nullptr);
  EXPECT_EQ(sig.size(), acq.signature_length());
  EXPECT_EQ(sig.size(), 16u);
}

TEST(Acquisition, NoiselessAcquisitionIsDeterministic) {
  const auto cfg = SignatureTestConfig::simulation_study();
  SignatureAcquirer acq(cfg, 16);
  stf::rf::IdealGainDut dut(Cplx(2.0, 0.0));
  const auto a = acq.acquire(dut, test_stimulus(cfg.capture_s), nullptr);
  const auto b = acq.acquire(dut, test_stimulus(cfg.capture_s), nullptr);
  EXPECT_EQ(a, b);
}

TEST(Acquisition, SignatureScalesWithDutGain) {
  // Linearized mixers: the property under test is pipeline linearity in
  // the DUT gain, not mixer compression.
  auto cfg = SignatureTestConfig::simulation_study();
  cfg.board.up_mixer.iip3_dbm = 300.0;
  cfg.board.down_mixer.iip3_dbm = 300.0;
  SignatureAcquirer acq(cfg, 16);
  stf::rf::IdealGainDut g1(Cplx(1.0, 0.0));
  stf::rf::IdealGainDut g2(Cplx(2.0, 0.0));
  const auto s1 = acq.acquire(g1, test_stimulus(cfg.capture_s), nullptr);
  const auto s2 = acq.acquire(g2, test_stimulus(cfg.capture_s), nullptr);
  // The mixers compress slightly at the higher drive, so scaling is linear
  // only to a fraction of a percent.
  for (std::size_t i = 0; i < s1.size(); ++i)
    EXPECT_NEAR(s2[i], 2.0 * s1[i], 1e-9 + 2e-3 * s1[i]);
}

// The paper's robustness claim (Section 2.1): the production hazard is a
// *small* random fluctuation of the LO path phase (cable lengths change by
// fractions of the 0.75 cm quarter-wave at 10 GHz). Near the Eq. 4 null
// the basic configuration's signature swings wildly with such a
// fluctuation; the offset-LO + FFT-magnitude configuration (Fig. 3)
// changes only marginally at ANY nominal phase.
namespace phase_robustness {

// Relative signature change caused by a small phase fluctuation dphi on
// top of the nominal path phase phi0.
double rel_change(SignatureTestConfig cfg, double phi0, double dphi) {
  stf::rf::IdealGainDut dut(Cplx(3.0, 0.0));
  cfg.board.path_phase_rad = phi0;
  const auto a = SignatureAcquirer(cfg, 16).acquire(
      dut, test_stimulus(cfg.capture_s), nullptr);
  cfg.board.path_phase_rad = phi0 + dphi;
  const auto b = SignatureAcquirer(cfg, 16).acquire(
      dut, test_stimulus(cfg.capture_s), nullptr);
  double ref = 0.0, diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ref += a[i] * a[i];
    diff += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(diff / (ref + 1e-30));
}

const double kPhiGrid[] = {0.0, 0.4, 0.8, 1.2, M_PI / 2.0 - 0.1, 2.0, 2.6};

double worst_case(const SignatureTestConfig& cfg, double dphi) {
  double worst = 0.0;
  for (double phi0 : kPhiGrid)
    worst = std::max(worst, rel_change(cfg, phi0, dphi));
  return worst;
}

}  // namespace phase_robustness

TEST(Acquisition, WorstCasePhaseSensitivityMuchLowerWithOffsetMagnitude) {
  // The production hazard is a small random fluctuation of the LO path
  // phase on top of an arbitrary (uncontrolled) nominal phi0. Near the
  // Eq. 4 null the basic Fig. 2 configuration's signature swings by ~100%;
  // the offset-LO + FFT-magnitude configuration (Fig. 3) is bounded at a
  // modest level for every phi0.
  const double dphi = 0.2;

  auto basic = SignatureTestConfig::simulation_study();
  basic.board.lo_offset_hz = 0.0;
  basic.use_fft_magnitude = false;

  const auto robust = SignatureTestConfig::simulation_study();

  const double worst_basic = phase_robustness::worst_case(basic, dphi);
  const double worst_robust = phase_robustness::worst_case(robust, dphi);
  EXPECT_LT(worst_robust, 0.25);
  EXPECT_GT(worst_basic, 1.0);  // ~total signature change near the null
  EXPECT_GT(worst_basic, 5.0 * worst_robust);
}

TEST(Acquisition, PhaseInvarianceTightWhenOffsetExceedsBandwidth) {
  // Hardware-study condition: the stimulus core bandwidth (~1 kHz steps)
  // sits well below the 100 kHz LO offset, so the Eq. 5 magnitude trick
  // holds to a few percent (PWL corner spectra decay only as 1/f^2, which
  // leaves a small overlap residual -- contrast with the total collapse of
  // the Eq. 4 configuration).
  auto cfg = SignatureTestConfig::hardware_study();
  stf::rf::IdealGainDut dut(Cplx(3.0, 0.0));
  const auto stim = stf::dsp::PwlWaveform::uniform(
      cfg.capture_s, {0.0, 0.2, -0.15, 0.1, -0.2, 0.15, 0.05, -0.1});
  cfg.board.path_phase_rad = 0.0;
  const auto ref =
      SignatureAcquirer(cfg, 16).acquire(dut, stim, nullptr);
  cfg.board.path_phase_rad = 2.2;
  const auto shifted =
      SignatureAcquirer(cfg, 16).acquire(dut, stim, nullptr);
  double ref_norm = 0.0, diff_norm = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ref_norm += ref[i] * ref[i];
    diff_norm += (ref[i] - shifted[i]) * (ref[i] - shifted[i]);
  }
  EXPECT_LT(std::sqrt(diff_norm / ref_norm), 0.05);
}

TEST(Acquisition, TimeDomainSignatureIsPhaseSensitive) {
  // Without the FFT-magnitude step (Fig. 2 configuration, f1 == f2) the
  // signature collapses at phi = pi/2 -- Eq. 4.
  auto cfg = SignatureTestConfig::simulation_study();
  cfg.use_fft_magnitude = false;
  cfg.board.lo_offset_hz = 0.0;
  stf::rf::IdealGainDut dut(Cplx(3.0, 0.0));

  cfg.board.path_phase_rad = 0.0;
  const auto s0 = SignatureAcquirer(cfg, 32).acquire(
      dut, test_stimulus(cfg.capture_s), nullptr);
  cfg.board.path_phase_rad = M_PI / 2.0;
  const auto s90 = SignatureAcquirer(cfg, 32).acquire(
      dut, test_stimulus(cfg.capture_s), nullptr);

  double p0 = 0.0, p90 = 0.0;
  for (double v : s0) p0 += v * v;
  for (double v : s90) p90 += v * v;
  EXPECT_LT(p90, p0 * 1e-6);
}

TEST(Acquisition, NoiseChangesSignature) {
  const auto cfg = SignatureTestConfig::simulation_study();
  SignatureAcquirer acq(cfg, 16);
  stf::rf::IdealGainDut dut(Cplx(2.0, 0.0));
  stf::stats::Rng rng(3);
  const auto clean = acq.acquire(dut, test_stimulus(cfg.capture_s), nullptr);
  const auto noisy = acq.acquire(dut, test_stimulus(cfg.capture_s), &rng);
  double diff = 0.0;
  for (std::size_t i = 0; i < clean.size(); ++i)
    diff += std::abs(noisy[i] - clean[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(Acquisition, ExpectedBinNoiseMatchesEmpirical) {
  const auto cfg = SignatureTestConfig::simulation_study();
  SignatureAcquirer acq(cfg, 16);
  stf::rf::IdealGainDut dut(Cplx(2.0, 0.0));
  const auto stim = test_stimulus(cfg.capture_s);
  const auto clean = acq.acquire(dut, stim, nullptr);
  stf::stats::Rng rng(7);
  // Empirical std of one (strong) bin across repeated noisy acquisitions.
  const std::size_t bin = 2;
  std::vector<double> values;
  for (int i = 0; i < 200; ++i)
    values.push_back(acq.acquire(dut, stim, &rng)[bin] - clean[bin]);
  double var = 0.0;
  for (double v : values) var += v * v;
  const double sigma_emp = std::sqrt(var / values.size());
  const double sigma_pred = acq.expected_bin_noise_sigma();
  EXPECT_GT(sigma_emp, 0.2 * sigma_pred);
  EXPECT_LT(sigma_emp, 5.0 * sigma_pred);
}

TEST(Acquisition, HardwareStudyConfigDiffers) {
  const auto sim = SignatureTestConfig::simulation_study();
  const auto hw = SignatureTestConfig::hardware_study();
  EXPECT_DOUBLE_EQ(hw.capture_s, 5e-3);
  EXPECT_DOUBLE_EQ(hw.digitizer.fs_hz, 1e6);
  EXPECT_DOUBLE_EQ(hw.board.lo_offset_hz, 100e3);
  EXPECT_DOUBLE_EQ(sim.digitizer.fs_hz, 20e6);
}

// -------------------------------------------------------------- objective --

TEST(Objective, PerfectMappingHasZeroResidual) {
  // A_p = A_s (specs ARE the signature sensitivities): residual must be 0
  // and with sigma_m = 0 the objective vanishes.
  stf::la::Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  auto out = signature_objective(a, a, 0.0);
  EXPECT_NEAR(out.f, 0.0, 1e-18);
  for (double s : out.sigma_p) EXPECT_NEAR(s, 0.0, 1e-10);
}

TEST(Objective, OrthogonalSignatureGivesFullResidual) {
  // Signature sensitive only to parameter 1, spec only to parameter 2:
  // nothing maps, residual equals ||a_p||.
  stf::la::Matrix a_p{{0.0, 5.0}};
  stf::la::Matrix a_s{{1.0, 0.0}};
  auto out = signature_objective(a_p, a_s, 0.0);
  EXPECT_NEAR(out.sigma_p[0], 5.0, 1e-10);
  EXPECT_NEAR(out.f, 25.0, 1e-9);
}

TEST(Objective, NoisePenaltyGrowsWithSigmaM) {
  stf::la::Matrix a_p{{1.0, 0.5}};
  stf::la::Matrix a_s{{0.01, 0.0}, {0.0, 0.02}};  // weak signature
  auto quiet = signature_objective(a_p, a_s, 0.0);
  auto noisy = signature_objective(a_p, a_s, 1e-3);
  EXPECT_GT(noisy.f, quiet.f);
  EXPECT_GT(noisy.noise_term[0], 0.0);
}

TEST(Objective, StrongerSignatureSensitivityLowersNoiseTerm) {
  stf::la::Matrix a_p{{1.0}};
  stf::la::Matrix weak{{0.01}};
  stf::la::Matrix strong{{1.0}};
  const double sigma_m = 1e-3;
  auto w = signature_objective(a_p, weak, sigma_m);
  auto s = signature_objective(a_p, strong, sigma_m);
  EXPECT_LT(s.f, w.f);
}

TEST(Objective, DimensionMismatchThrows) {
  stf::la::Matrix a_p(2, 3);
  stf::la::Matrix a_s(4, 2);
  EXPECT_THROW(signature_objective(a_p, a_s, 0.0), std::invalid_argument);
  EXPECT_THROW(signature_objective(stf::la::Matrix{}, a_s, 0.0),
               std::invalid_argument);
  stf::la::Matrix ok(4, 3);
  EXPECT_THROW(signature_objective(a_p, ok, -1.0), std::invalid_argument);
}

TEST(Objective, MappingMatrixShape) {
  stf::la::Matrix a_p(3, 5);
  stf::la::Matrix a_s(7, 5);
  a_p(0, 0) = 1.0;
  a_s(0, 0) = 1.0;
  a_s(1, 1) = 1.0;
  auto out = signature_objective(a_p, a_s, 1e-4);
  EXPECT_EQ(out.a.rows(), 3u);
  EXPECT_EQ(out.a.cols(), 7u);
  EXPECT_EQ(out.sigma.size(), 3u);
}

// ------------------------------------------------------------- sensitivity --

// Synthetic factory: specs and DUT gain are known linear functions of the
// two parameters, so the sensitivity matrices have closed forms.
DeviceFactory synthetic_factory() {
  return [](const std::vector<double>& x) {
    DeviceCharacterization out;
    out.specs = {2.0 * x[0] + 3.0 * x[1], -1.0 * x[1]};
    out.dut = std::make_shared<stf::rf::IdealGainDut>(
        Cplx(x[0] + 0.5 * x[1], 0.0));
    return out;
  };
}

TEST(Sensitivity, SpecSensitivityMatchesClosedForm) {
  PerturbationSet ps(synthetic_factory(), {1.0, 2.0}, 0.05);
  auto a_p = ps.spec_sensitivity();
  ASSERT_EQ(a_p.rows(), 2u);
  ASSERT_EQ(a_p.cols(), 2u);
  // d(specs)/d(relative x_j) = d(specs)/dx_j * x0_j.
  EXPECT_NEAR(a_p(0, 0), 2.0 * 1.0, 1e-9);
  EXPECT_NEAR(a_p(0, 1), 3.0 * 2.0, 1e-9);
  EXPECT_NEAR(a_p(1, 0), 0.0, 1e-9);
  EXPECT_NEAR(a_p(1, 1), -1.0 * 2.0, 1e-9);
}

TEST(Sensitivity, SignatureSensitivityScalesWithGainDependence) {
  PerturbationSet ps(synthetic_factory(), {1.0, 2.0}, 0.05);
  const auto cfg = SignatureTestConfig::simulation_study();
  SignatureAcquirer acq(cfg, 8);
  auto a_s = ps.signature_sensitivity(acq, test_stimulus(cfg.capture_s));
  ASSERT_EQ(a_s.rows(), 8u);
  ASSERT_EQ(a_s.cols(), 2u);
  // Gain = x0 + 0.5 x1; relative sensitivities are x0 and 0.5*x1 = 1 and 1,
  // so the two columns must be (near) equal.
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(a_s(i, 0), a_s(i, 1), 1e-6 + 1e-3 * std::abs(a_s(i, 0)));
}

TEST(Sensitivity, InvalidConstructionThrows) {
  EXPECT_THROW(PerturbationSet(nullptr, {1.0}, 0.05), std::invalid_argument);
  EXPECT_THROW(PerturbationSet(synthetic_factory(), {}, 0.05),
               std::invalid_argument);
  EXPECT_THROW(PerturbationSet(synthetic_factory(), {1.0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(PerturbationSet(synthetic_factory(), {1.0}, 1.5),
               std::invalid_argument);
}

// ------------------------------------------------------------- calibration --

TEST(Calibration, RecoversLinearMapExactly) {
  // spec = 3 * bin0 - 2 * bin1 + 1: a degree-1 model must nail it.
  CalibrationOptions opts;
  opts.poly_degree = 1;
  opts.ridge_lambda = 0.0;
  CalibrationModel model(opts);
  stf::stats::Rng rng(3);
  const std::size_t n = 30;
  stf::la::Matrix sig(n, 2), specs(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double b0 = rng.uniform(0.0, 1.0);
    const double b1 = rng.uniform(0.0, 1.0);
    sig(i, 0) = b0;
    sig(i, 1) = b1;
    specs(i, 0) = 3.0 * b0 - 2.0 * b1 + 1.0;
  }
  model.fit(sig, specs);
  for (int t = 0; t < 10; ++t) {
    const double b0 = rng.uniform(0.0, 1.0);
    const double b1 = rng.uniform(0.0, 1.0);
    const auto p = model.predict({b0, b1});
    EXPECT_NEAR(p[0], 3.0 * b0 - 2.0 * b1 + 1.0, 1e-8);
  }
}

TEST(Calibration, QuadraticNeedsDegreeTwo) {
  stf::stats::Rng rng(5);
  const std::size_t n = 60;
  stf::la::Matrix sig(n, 1), specs(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double b = rng.uniform(-1.0, 1.0);
    sig(i, 0) = b;
    specs(i, 0) = b * b;
  }
  CalibrationOptions lin;
  lin.poly_degree = 1;
  lin.ridge_lambda = 1e-9;
  CalibrationModel m1(lin);
  m1.fit(sig, specs);
  CalibrationOptions quad;
  quad.poly_degree = 2;
  quad.ridge_lambda = 1e-9;
  CalibrationModel m2(quad);
  m2.fit(sig, specs);
  double err1 = 0.0, err2 = 0.0;
  for (double b = -0.9; b <= 0.9; b += 0.1) {
    err1 += std::abs(m1.predict({b})[0] - b * b);
    err2 += std::abs(m2.predict({b})[0] - b * b);
  }
  EXPECT_LT(err2, err1 / 10.0);
}

TEST(Calibration, MultipleSpecsIndependent) {
  stf::stats::Rng rng(7);
  const std::size_t n = 40;
  stf::la::Matrix sig(n, 2), specs(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    sig(i, 0) = rng.uniform(0.0, 1.0);
    sig(i, 1) = rng.uniform(0.0, 1.0);
    specs(i, 0) = 5.0 * sig(i, 0);
    specs(i, 1) = -2.0 * sig(i, 1);
  }
  CalibrationOptions opts;
  opts.poly_degree = 1;
  opts.ridge_lambda = 1e-9;
  CalibrationModel model(opts);
  model.fit(sig, specs);
  const auto p = model.predict({0.5, 0.25});
  EXPECT_NEAR(p[0], 2.5, 1e-6);
  EXPECT_NEAR(p[1], -0.5, 1e-6);
}

TEST(Calibration, ErrorsOnMisuse) {
  CalibrationModel model;
  EXPECT_THROW(model.predict({1.0}), std::logic_error);
  stf::la::Matrix sig(1, 2), specs(1, 1);
  EXPECT_THROW(model.fit(sig, specs), std::invalid_argument);  // n < 2
  stf::la::Matrix sig2(4, 2), specs2(3, 1);
  EXPECT_THROW(model.fit(sig2, specs2), std::invalid_argument);
  EXPECT_THROW(CalibrationModel(CalibrationOptions{0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(CalibrationModel(CalibrationOptions{2, -1.0}),
               std::invalid_argument);
}

TEST(Calibration, PredictRejectsWrongLength) {
  stf::stats::Rng rng(9);
  stf::la::Matrix sig(10, 3), specs(10, 1);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 3; ++j) sig(i, j) = rng.uniform(0.0, 1.0);
    specs(i, 0) = sig(i, 0);
  }
  CalibrationModel model;
  model.fit(sig, specs);
  EXPECT_THROW(model.predict({1.0}), std::invalid_argument);
}

TEST(Calibration, ConstantBinHandledGracefully) {
  stf::stats::Rng rng(11);
  stf::la::Matrix sig(20, 2), specs(20, 1);
  for (std::size_t i = 0; i < 20; ++i) {
    sig(i, 0) = 0.7;  // dead bin
    sig(i, 1) = rng.uniform(0.0, 1.0);
    specs(i, 0) = 2.0 * sig(i, 1);
  }
  CalibrationOptions opts;
  opts.poly_degree = 1;
  opts.ridge_lambda = 1e-9;
  CalibrationModel model(opts);
  EXPECT_NO_THROW(model.fit(sig, specs));
  EXPECT_NEAR(model.predict({0.7, 0.5})[0], 1.0, 1e-6);
}

TEST(Calibration, PredictBatchMatchesPredictExactly) {
  // predict_batch is the batched pipeline's one-GEMV-per-batch path; the
  // determinism contract requires it to reproduce predict() bit for bit,
  // so the comparison is EXPECT_EQ, not NEAR.
  stf::stats::Rng rng(21);
  const std::size_t n = 50, m = 4;
  stf::la::Matrix sig(n, m), specs(n, 3);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) sig(i, j) = rng.uniform(0.0, 1.0);
    specs(i, 0) = 3.0 * sig(i, 0) - sig(i, 2);
    specs(i, 1) = sig(i, 1) * sig(i, 1) + 0.5;
    specs(i, 2) = sig(i, 3) - 2.0 * sig(i, 0) * sig(i, 1);
  }
  CalibrationOptions opts;
  opts.poly_degree = 2;
  opts.ridge_lambda = 1e-6;
  CalibrationModel model(opts);
  model.fit(sig, specs);

  stf::stats::Rng probe_rng(23);
  const std::size_t batch = 17;
  stf::la::Matrix probes(batch, m);
  for (std::size_t i = 0; i < batch; ++i)
    for (std::size_t j = 0; j < m; ++j)
      probes(i, j) = probe_rng.uniform(-0.5, 1.5);
  const stf::la::Matrix out = model.predict_batch(probes);
  ASSERT_EQ(out.rows(), batch);
  ASSERT_EQ(out.cols(), 3u);
  for (std::size_t i = 0; i < batch; ++i) {
    const auto one = model.predict(probes.row(i));
    ASSERT_EQ(one.size(), out.cols());
    for (std::size_t s = 0; s < one.size(); ++s)
      EXPECT_EQ(out(i, s), one[s]) << "row " << i << " spec " << s;
  }
}

TEST(Calibration, PredictBatchRejectsMisuse) {
  CalibrationModel unfitted;
  EXPECT_THROW(unfitted.predict_batch(stf::la::Matrix(2, 2)),
               std::logic_error);
  stf::stats::Rng rng(25);
  stf::la::Matrix sig(10, 3), specs(10, 1);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 3; ++j) sig(i, j) = rng.uniform(0.0, 1.0);
    specs(i, 0) = sig(i, 0);
  }
  CalibrationModel model;
  model.fit(sig, specs);
  EXPECT_THROW(model.predict_batch(stf::la::Matrix(4, 2)),
               std::invalid_argument);
  const auto empty = model.predict_batch(stf::la::Matrix(0, 3));
  EXPECT_EQ(empty.rows(), 0u);
}

// A fitted model whose serialized text the corruption tests can mutate.
static std::string fitted_model_text() {
  stf::stats::Rng rng(27);
  stf::la::Matrix sig(20, 3), specs(20, 2);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 3; ++j) sig(i, j) = rng.uniform(0.0, 1.0);
    specs(i, 0) = sig(i, 0) + sig(i, 1);
    specs(i, 1) = sig(i, 2);
  }
  CalibrationOptions opts;
  opts.poly_degree = 2;
  opts.ridge_lambda = 1e-6;
  CalibrationModel model(opts);
  model.fit(sig, specs);
  return model.serialize();
}

TEST(Calibration, DeserializeErrorsAreTypedAndDescriptive) {
  // Regression: corruption used to surface as a raw stream failure or, for
  // a flipped length field, a giant allocation. Every malformed input must
  // now throw CalibrationParseError with a message naming the bad field.
  const std::string good = fitted_model_text();
  ASSERT_NO_THROW(CalibrationModel::deserialize(good));

  auto expect_parse_error = [](const std::string& text,
                               const std::string& needle) {
    try {
      CalibrationModel::deserialize(text);
      FAIL() << "expected CalibrationParseError for: " << needle;
    } catch (const CalibrationParseError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("CalibrationModel::deserialize"), std::string::npos)
          << what;
      EXPECT_NE(what.find(needle), std::string::npos) << what;
    }
  };

  expect_parse_error("", "bad header");
  expect_parse_error("garbage v9", "bad header");
  expect_parse_error("sigtest-calibration v2\n", "bad header");

  // Truncation mid-vector (not at the tail, where a partial double could
  // still parse).
  const auto mid = good.find("bin_scale");
  ASSERT_NE(mid, std::string::npos);
  expect_parse_error(good.substr(0, mid + 12), "bin_scale");

  // A flipped length field must be rejected before any allocation.
  std::string huge = good;
  const auto bm = huge.find("bin_mean 3");
  ASSERT_NE(bm, std::string::npos);
  huge.replace(bm, std::strlen("bin_mean 3"), "bin_mean 2000000");
  expect_parse_error(huge, "exceeds limit");

  std::string bad_degree = good;
  const auto pd = bad_degree.find("poly_degree 2");
  ASSERT_NE(pd, std::string::npos);
  bad_degree.replace(pd, std::strlen("poly_degree 2"), "poly_degree 9");
  expect_parse_error(bad_degree, "poly_degree");

  std::string bad_lambda = good;
  const auto rl = bad_lambda.find("ridge_lambda ");
  const auto rl_end = bad_lambda.find('\n', rl);
  ASSERT_NE(rl, std::string::npos);
  bad_lambda.replace(rl, rl_end - rl, "ridge_lambda -1");
  expect_parse_error(bad_lambda, "ridge_lambda");

  // And the typed error still satisfies the legacy catch sites.
  EXPECT_THROW(CalibrationModel::deserialize("nope"), std::invalid_argument);
}

TEST(Calibration, DeserializeRoundTripSurvivesPredictBatch) {
  const std::string text = fitted_model_text();
  const auto restored = CalibrationModel::deserialize(text);
  stf::stats::Rng rng(29);
  stf::la::Matrix probes(7, 3);
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = 0; j < 3; ++j) probes(i, j) = rng.uniform(0.0, 1.0);
  const auto batch = restored.predict_batch(probes);
  for (std::size_t i = 0; i < 7; ++i) {
    const auto one = restored.predict(probes.row(i));
    for (std::size_t s = 0; s < one.size(); ++s)
      EXPECT_EQ(batch(i, s), one[s]);
  }
}

}  // namespace
