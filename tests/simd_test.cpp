// SIMD kernels vs their scalar references, and the arena allocator's
// zero-heap contract.
//
// The determinism story of the SIMD pass is that the scalar path is the
// bit-exact reference: every vectorized kernel (FFT butterflies, biquad
// cascades, mixer/LNA envelope math, the calibration GEMV) must produce
// bit-identical doubles with SIMD enabled and disabled, on friendly and
// adversarial inputs (denormals, NaNs, remainder tails at every lane
// count). These tests flip the runtime kill switch (core::simd::set_enabled)
// inside one process and memcmp the results.
#include <algorithm>
#include <cmath>
#include <complex>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/arena.hpp"
#include "core/simd.hpp"
#include "core/telemetry.hpp"
#include "dsp/fft.hpp"
#include "dsp/iir.hpp"
#include "dsp/pwl.hpp"
#include "linalg/matrix.hpp"
#include "rf/dut.hpp"
#include "rf/loadboard.hpp"
#include "rf/population.hpp"
#include "sigtest/batch.hpp"
#include "sigtest/calibration.hpp"
#include "stats/rng.hpp"

namespace {

using namespace stf;
namespace simd = stf::core::simd;

// Restores the SIMD kill switch to its environment default on scope exit so
// one test cannot poison another.
struct SimdGuard {
  ~SimdGuard() { simd::clear_enabled_override(); }
};

bool bits_equal(const double* a, const double* b, std::size_t n) {
  return std::memcmp(a, b, n * sizeof(double)) == 0;
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() && bits_equal(a.data(), b.data(), a.size());
}

bool bits_equal(const std::vector<dsp::cplx>& a,
                const std::vector<dsp::cplx>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(dsp::cplx)) == 0;
}

std::vector<double> random_vector(std::size_t n, stats::Rng& rng,
                                  double scale = 1.0) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal(0.0, scale);
  return v;
}

// --- SIMD primitive semantics (compiled backend) ---

TEST(SimdPrimitives, LoadStoreRoundTripAndArithmetic) {
  alignas(64) double in[simd::kLanes];
  alignas(64) double out[simd::kLanes];
  for (std::size_t i = 0; i < simd::kLanes; ++i)
    in[i] = 1.5 * static_cast<double>(i) - 2.0;
  const simd::VecD v = simd::load(in);
  simd::store(out, v);
  EXPECT_TRUE(bits_equal(in, out, simd::kLanes));

  const simd::VecD s = v + v * simd::broadcast(3.0);
  simd::store(out, s);
  for (std::size_t i = 0; i < simd::kLanes; ++i)
    EXPECT_EQ(out[i], in[i] + in[i] * 3.0);
}

TEST(SimdPrimitives, ComplexMulMatchesScalarComplexProduct) {
  // complex_mul on interleaved (re, im) pairs must equal the explicit
  // real-arithmetic complex product, lane for lane, bitwise.
  stats::Rng rng(101);
  alignas(64) double x[simd::kLanes];
  alignas(64) double w[simd::kLanes];
  alignas(64) double p[simd::kLanes];
  for (std::size_t i = 0; i < simd::kLanes; ++i) {
    x[i] = rng.normal(0.0, 1.0);
    w[i] = rng.normal(0.0, 1.0);
  }
  simd::store(p, simd::complex_mul(simd::load(x), simd::load(w)));
  for (std::size_t i = 0; i + 1 < simd::kLanes || i == 0; i += 2) {
    if (simd::kLanes < 2) break;
    const double re = x[i] * w[i] - x[i + 1] * w[i + 1];
    const double im = x[i + 1] * w[i] + x[i] * w[i + 1];
    EXPECT_EQ(p[i], re);
    EXPECT_EQ(p[i + 1], im);
  }
}

TEST(SimdPrimitives, DeinterleaveSplitsEvenOddLanes) {
  if (simd::kLanes < 2) GTEST_SKIP() << "scalar backend has no pairs";
  alignas(64) double a[2 * simd::kLanes];
  alignas(64) double ev_out[simd::kLanes];
  alignas(64) double od_out[simd::kLanes];
  for (std::size_t i = 0; i < 2 * simd::kLanes; ++i)
    a[i] = static_cast<double>(i) + 0.25;
  simd::VecD ev, od;
  simd::deinterleave(simd::load(a), simd::load(a + simd::kLanes), ev, od);
  simd::store(ev_out, ev);
  simd::store(od_out, od);
  for (std::size_t i = 0; i < simd::kLanes; ++i) {
    EXPECT_EQ(ev_out[i], a[2 * i]);
    EXPECT_EQ(od_out[i], a[2 * i + 1]);
  }
}

TEST(SimdPrimitives, KillSwitchDisablesDispatch) {
  SimdGuard guard;
  simd::set_enabled(false);
  EXPECT_FALSE(simd::enabled());
  simd::set_enabled(true);
  // enabled() may still be false on a scalar-only build; it must never be
  // true when the backend compiled out.
  if (!simd::compiled()) {
    EXPECT_FALSE(simd::enabled());
  }
}

// --- FFT: SIMD on/off bit-identity, pow2 + Bluestein, adversarial sizes ---

TEST(SimdFft, OnOffBitIdenticalAcrossSizes) {
  SimdGuard guard;
  stats::Rng rng(7);
  // Pow2 (radix-2 kernel), non-pow2 (Bluestein chirp/convolution), and
  // remainder-tail sizes around every lane count.
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u, 16u, 17u, 31u, 64u,
                        100u, 101u, 128u, 255u, 1000u}) {
    std::vector<dsp::cplx> x(n);
    for (auto& v : x) {
      const double re = rng.normal(0.0, 1.0);
      const double im = rng.normal(0.0, 1.0);
      v = dsp::cplx(re, im);
    }
    simd::set_enabled(true);
    const auto on = dsp::fft(x);
    const auto on_inv = dsp::ifft(on);
    simd::set_enabled(false);
    const auto off = dsp::fft(x);
    const auto off_inv = dsp::ifft(off);
    EXPECT_TRUE(bits_equal(on, off)) << "fft n=" << n;
    EXPECT_TRUE(bits_equal(on_inv, off_inv)) << "ifft n=" << n;
  }
}

TEST(SimdFft, InplacePow2MatchesAllocatingFft) {
  SimdGuard guard;
  stats::Rng rng(21);
  for (std::size_t n : {1u, 2u, 8u, 64u, 256u}) {
    std::vector<dsp::cplx> x(n);
    for (auto& v : x) {
      const double re = rng.normal(0.0, 1.0);
      const double im = rng.normal(0.0, 1.0);
      v = dsp::cplx(re, im);
    }
    for (bool on : {true, false}) {
      simd::set_enabled(on);
      auto inplace = x;
      dsp::fft_pow2_inplace(inplace);
      EXPECT_TRUE(bits_equal(inplace, dsp::fft(x))) << "n=" << n;
    }
  }
}

TEST(SimdFft, DenormalInputsStayBitIdentical) {
  SimdGuard guard;
  std::vector<dsp::cplx> x(37);  // Bluestein path
  const double tiny = std::numeric_limits<double>::denorm_min();
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = dsp::cplx(tiny * static_cast<double>(i + 1),
                     -tiny * static_cast<double>(i));
  simd::set_enabled(true);
  const auto on = dsp::fft(x);
  simd::set_enabled(false);
  const auto off = dsp::fft(x);
  EXPECT_TRUE(bits_equal(on, off));
}

TEST(SimdFft, NanPropagatesToEveryBinInBothModes) {
  // NaN policy: a poisoned sample contaminates the transform in both modes
  // (position-identical non-finiteness); payload bits are not compared
  // because vector and scalar complex products may produce different NaN
  // payloads. The signature path's firewall rejects either way.
  SimdGuard guard;
  std::vector<dsp::cplx> x(16, dsp::cplx(1.0, 0.0));
  x[5] = dsp::cplx(std::numeric_limits<double>::quiet_NaN(), 0.0);
  for (bool on : {true, false}) {
    simd::set_enabled(on);
    const auto spec = dsp::fft(x);
    for (const auto& v : spec)
      EXPECT_TRUE(std::isnan(v.real()) || std::isnan(v.imag()));
  }
}

TEST(SimdFft, PlanTablesAreLaneAligned) {
  EXPECT_GE(dsp::fft_plan_table_alignment(), simd::kAlignment);
  for (std::size_t n : {8u, 64u, 1024u, 37u, 101u, 1000u})
    EXPECT_TRUE(dsp::fft_plan_tables_aligned(n)) << "n=" << n;
}

// --- IIR biquad cascade: interleaved-channel kernel ---

TEST(SimdIir, ComplexFilterOnOffBitIdentical) {
  SimdGuard guard;
  stats::Rng rng(31);
  for (std::size_t n : {1u, 2u, 3u, 17u, 256u}) {
    const auto lpf = dsp::butterworth_lowpass(5, 0.1, 1.0);
    std::vector<std::complex<double>> x(n);
    for (auto& v : x) {
      const double re = rng.normal(0.0, 1.0);
      const double im = rng.normal(0.0, 1.0);
      v = {re, im};
    }
    auto on = x;
    auto off = x;
    simd::set_enabled(true);
    lpf.filter_inplace(std::span<std::complex<double>>(on));
    simd::set_enabled(false);
    lpf.filter_inplace(std::span<std::complex<double>>(off));
    ASSERT_EQ(on.size(), off.size());
    EXPECT_EQ(std::memcmp(on.data(), off.data(),
                          n * sizeof(std::complex<double>)),
              0)
        << "n=" << n;
  }
}

TEST(SimdIir, InterleavedMatchesPerChannelScalarAtEveryWidth) {
  // Multi-channel interleaving fills lanes with independent captures; each
  // channel must reproduce the scalar single-channel filter bitwise at
  // every channel count, including lane-remainder widths.
  SimdGuard guard;
  stats::Rng rng(37);
  const auto lpf = dsp::butterworth_lowpass(4, 0.2, 1.0);
  const std::size_t n = 64;
  for (std::size_t ch = 1; ch <= 2 * simd::kLanes + 1; ++ch) {
    std::vector<std::vector<double>> channels(ch);
    std::vector<double> interleaved(n * ch);
    for (std::size_t c = 0; c < ch; ++c) {
      channels[c] = random_vector(n, rng);
      for (std::size_t i = 0; i < n; ++i)
        interleaved[i * ch + c] = channels[c][i];
    }
    simd::set_enabled(true);
    lpf.filter_interleaved(interleaved, ch);
    simd::set_enabled(false);
    for (auto& c : channels) lpf.filter_inplace(c);
    for (std::size_t c = 0; c < ch; ++c)
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(interleaved[i * ch + c], channels[c][i])
            << "ch=" << ch << " c=" << c << " i=" << i;
  }
}

TEST(SimdIir, DenormalTailDecayBitIdentical) {
  SimdGuard guard;
  const auto lpf = dsp::butterworth_lowpass(5, 0.01, 1.0);
  // An impulse through a narrow filter decays into denormal territory.
  std::vector<std::complex<double>> x(2048, {0.0, 0.0});
  x[0] = {1e-300, -1e-300};
  auto on = x;
  auto off = x;
  simd::set_enabled(true);
  lpf.filter_inplace(std::span<std::complex<double>>(on));
  simd::set_enabled(false);
  lpf.filter_inplace(std::span<std::complex<double>>(off));
  EXPECT_EQ(
      std::memcmp(on.data(), off.data(), x.size() * sizeof(x[0])), 0);
}

// --- RF envelope kernels: mixer + LNA + full board ---

TEST(SimdRf, MixerApplyOnOffBitIdentical) {
  SimdGuard guard;
  stats::Rng rng(41);
  rf::MixerModel mixer;
  mixer.conversion_gain_db = -4.0;
  mixer.iip3_dbm = 15.0;
  for (std::size_t n : {1u, 2u, 3u, 5u, 101u}) {
    std::vector<rf::Cplx> x(n);
    for (auto& v : x) {
      const double re = rng.normal(0.0, 0.3);
      const double im = rng.normal(0.0, 0.3);
      v = rf::Cplx(re, im);
    }
    auto on = x;
    auto off = x;
    simd::set_enabled(true);
    mixer.apply(std::span<rf::Cplx>(on));
    simd::set_enabled(false);
    mixer.apply(std::span<rf::Cplx>(off));
    EXPECT_EQ(std::memcmp(on.data(), off.data(), n * sizeof(rf::Cplx)), 0)
        << "n=" << n;
  }
}

TEST(SimdRf, MixerPreservesSignedZero) {
  // The mixer gain is real: a -0.0 quadrature must stay -0.0 (a complex
  // kernel with gain (g, 0) would compute g*re - 0*im and flip it).
  SimdGuard guard;
  rf::MixerModel mixer;
  std::vector<rf::Cplx> x(simd::kLanes, rf::Cplx(0.5, -0.0));
  simd::set_enabled(true);
  mixer.apply(std::span<rf::Cplx>(x));
  for (const auto& v : x) EXPECT_TRUE(std::signbit(v.imag()));
}

TEST(SimdRf, BoardRunOnOffBitIdenticalWithNoise) {
  SimdGuard guard;
  rf::LoadBoardConfig bc;
  bc.lo_offset_hz = 100e3;
  bc.lpf_cutoff_hz = 10e6;
  bc.down_mixer.lo_feedthrough_v = 5e-3;
  const double fs = 80e6;
  const rf::LoadBoard board(bc, fs);
  const rf::BehavioralLna lna(rf::Cplx(8.0, 1.2), 0.4, 3.0);
  stats::Rng seed_rng(53);
  for (std::size_t n : {3u, 37u, 400u, 401u}) {
    const std::vector<double> stim = random_vector(n, seed_rng, 0.2);
    simd::set_enabled(true);
    stats::Rng r_on(99);
    const auto on = board.run(stim, fs, lna, &r_on);
    simd::set_enabled(false);
    stats::Rng r_off(99);
    const auto off = board.run(stim, fs, lna, &r_off);
    EXPECT_TRUE(bits_equal(on, off)) << "n=" << n;
  }
}

// --- Calibration GEMV ---

TEST(SimdCalibration, PredictOnOffBitIdentical) {
  SimdGuard guard;
  stats::Rng rng(61);
  const std::size_t n_dev = 40, m = 23, n_specs = 7;
  la::Matrix sigs(n_dev, m);
  la::Matrix specs(n_dev, n_specs);
  for (std::size_t i = 0; i < n_dev; ++i) {
    for (std::size_t j = 0; j < m; ++j) sigs(i, j) = rng.normal(1.0, 0.3);
    for (std::size_t s = 0; s < n_specs; ++s)
      specs(i, s) = rng.normal(0.0, 2.0);
  }
  sigtest::CalibrationOptions co;
  co.ridge_lambda = 1e-3;
  sigtest::CalibrationModel model(co);
  model.fit(sigs, specs);

  const std::size_t n_test = 9;  // odd: exercises the GEMV row tail
  la::Matrix test(n_test, m);
  for (std::size_t i = 0; i < n_test; ++i)
    for (std::size_t j = 0; j < m; ++j) test(i, j) = rng.normal(1.0, 0.3);

  simd::set_enabled(true);
  const la::Matrix batch_on = model.predict_batch(test);
  simd::set_enabled(false);
  const la::Matrix batch_off = model.predict_batch(test);
  ASSERT_EQ(batch_on.rows(), batch_off.rows());
  EXPECT_TRUE(bits_equal(batch_on.data(), batch_off.data(),
                         batch_on.rows() * batch_on.cols()));

  // predict() (single device) must agree with its own batch row.
  simd::set_enabled(true);
  const auto single = model.predict(test.row(0));
  EXPECT_TRUE(bits_equal(single.data(), batch_off.row_ptr(0), n_specs));
}

// --- Arena allocator ---

TEST(Arena, ScopeRewindsAndOversizeFallsBackToHeap) {
  core::Arena arena(4096);
  EXPECT_EQ(arena.used(), 0u);
  {
    const core::ArenaScope scope(arena);
    void* p = arena.allocate(1000);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(arena.owns(p));
    EXPECT_GE(arena.used(), 1000u);
    // Oversize request: heap fallback, counted, not arena-owned.
    void* big = arena.allocate(1 << 20);
    ASSERT_NE(big, nullptr);
    EXPECT_FALSE(arena.owns(big));
    EXPECT_EQ(arena.heap_fallbacks(), 1u);
    arena.deallocate(big, 1 << 20);
  }
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_GE(arena.high_water(), 1000u);
}

TEST(Arena, BlocksAreLaneAligned) {
  core::Arena arena(4096);
  for (std::size_t bytes : {1u, 8u, 24u, 100u}) {
    void* p = arena.allocate(bytes);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % simd::kAlignment, 0u);
  }
}

TEST(Arena, ArenaVectorUsesArenaStorage) {
  core::Arena arena(1 << 16);
  const core::ArenaScope scope(arena);
  core::ArenaVector<double> v(128, 0.0, core::ArenaAllocator<double>(&arena));
  EXPECT_TRUE(arena.owns(v.data()));
  EXPECT_EQ(arena.heap_fallbacks(), 0u);
}

TEST(Arena, NestedScopesRestoreInStackOrder) {
  core::Arena arena(8192);
  arena.allocate(64);
  const std::size_t outer = arena.used();
  {
    const core::ArenaScope s1(arena);
    arena.allocate(256);
    const std::size_t mid = arena.used();
    {
      const core::ArenaScope s2(arena);
      arena.allocate(512);
      EXPECT_GT(arena.used(), mid);
    }
    EXPECT_EQ(arena.used(), mid);
  }
  EXPECT_EQ(arena.used(), outer);
}

// --- End-to-end: the batched production lot allocates zero per-device heap
// scratch in steady state (the mem.heap_fallbacks counter must not move). ---

TEST(ArenaSteadyState, BatchLotRunsWithoutHeapFallbacks) {
  const auto cfg = sigtest::SignatureTestConfig::simulation_study();
  sigtest::BatchRuntime runtime(
      cfg,
      dsp::PwlWaveform::uniform(cfg.capture_s,
                                {0.0, 0.3, -0.2, 0.4, -0.1, 0.2}),
      {"gain_db", "nf_db", "iip3_dbm"});
  auto devices = rf::make_lna_population(24, 0.2, 5);
  stats::Rng cal_rng(3);
  runtime.calibrate(devices, cal_rng, 2);

  const stats::Rng lot_rng(17);
  // Warm-up lot: first-touch arena growth and render/rotation caches.
  (void)runtime.test_lot(devices, lot_rng);
  const std::uint64_t fallbacks_before =
      core::telemetry::counter("mem.heap_fallbacks").value();
  const auto result = runtime.test_lot(devices, lot_rng);
  const std::uint64_t fallbacks_after =
      core::telemetry::counter("mem.heap_fallbacks").value();
  EXPECT_EQ(result.devices(), devices.size());
  EXPECT_EQ(fallbacks_after, fallbacks_before)
      << "steady-state lot fell back to the heap for capture scratch";
}

// --- Ziggurat normal sampler: distribution moments and determinism ---

TEST(Ziggurat, MomentsMatchStandardNormal) {
  stats::Rng rng(12345);
  const std::size_t n = 200000;
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0, sum4 = 0.0;
  std::size_t tail = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.normal(0.0, 1.0);
    sum += x;
    sum2 += x * x;
    sum3 += x * x * x;
    sum4 += x * x * x * x;
    if (std::abs(x) > 3.0) ++tail;
  }
  const double nd = static_cast<double>(n);
  EXPECT_NEAR(sum / nd, 0.0, 0.01);
  EXPECT_NEAR(sum2 / nd, 1.0, 0.02);
  EXPECT_NEAR(sum3 / nd, 0.0, 0.05);
  EXPECT_NEAR(sum4 / nd, 3.0, 0.1);  // normal kurtosis
  // P(|X| > 3) = 2.7e-3; with n draws the count is ~540 +- 23.
  EXPECT_GT(tail, 400u);
  EXPECT_LT(tail, 700u);
}

TEST(Ziggurat, ScalingAndDeterminism) {
  stats::Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i)
    EXPECT_EQ(a.normal(2.0, 0.5), b.normal(2.0, 0.5));
  // mu + sigma * z scaling: replay the stream against a unit draw.
  stats::Rng c(42), d(42);
  for (int i = 0; i < 1000; ++i) {
    const double z = c.normal(0.0, 1.0);
    EXPECT_EQ(d.normal(2.0, 0.5), 2.0 + 0.5 * z);
  }
}

}  // namespace
