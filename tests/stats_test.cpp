// Unit and property tests for the stats substrate.
#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.hpp"
#include "stats/metrics.hpp"
#include "stats/rng.hpp"
#include "stats/sampling.hpp"

namespace {

using stf::stats::Rng;

// ------------------------------------------------------------------- Rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i)
    any_diff |= a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformSpreadWithinBand) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_spread(100.0, 0.2);
    EXPECT_GE(x, 80.0);
    EXPECT_LE(x, 120.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(11);
  auto v = rng.normal_vector(20000, 5.0, 2.0);
  EXPECT_NEAR(stf::stats::mean(v), 5.0, 0.1);
  EXPECT_NEAR(stf::stats::stddev(v), 2.0, 0.1);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(13);
  auto p = rng.permutation(50);
  std::vector<bool> seen(50, false);
  for (auto i : p) {
    ASSERT_LT(i, 50u);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

// ----------------------------------------------------------- descriptive --

TEST(Descriptive, MeanVarianceKnown) {
  std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(stf::stats::mean(v), 5.0);
  EXPECT_NEAR(stf::stats::variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stf::stats::stddev_population(v), 2.0, 1e-12);
}

TEST(Descriptive, EmptyInputThrows) {
  std::vector<double> v;
  EXPECT_THROW(stf::stats::mean(v), std::invalid_argument);
  EXPECT_THROW(stf::stats::min(v), std::invalid_argument);
  EXPECT_THROW(stf::stats::max(v), std::invalid_argument);
}

TEST(Descriptive, MedianEvenAndOdd) {
  EXPECT_DOUBLE_EQ(stf::stats::median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(stf::stats::median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Descriptive, PercentileEndpoints) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(stf::stats::percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(stf::stats::percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(stf::stats::percentile(v, 50.0), 25.0);
  EXPECT_THROW(stf::stats::percentile(v, 101.0), std::invalid_argument);
}

TEST(Descriptive, PearsonPerfectCorrelation) {
  std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(stf::stats::pearson(a, b), 1.0, 1e-12);
  std::vector<double> c{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(stf::stats::pearson(a, c), -1.0, 1e-12);
}

TEST(Descriptive, PearsonZeroVarianceThrows) {
  std::vector<double> a{1.0, 1.0, 1.0};
  std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_THROW(stf::stats::pearson(a, b), std::invalid_argument);
}

// --------------------------------------------------------------- sampling --

TEST(Sampling, UniformBoxRespectsBounds) {
  stf::stats::UniformBox box{{100.0, 1e-12, 50.0}, 0.2};
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    auto x = box.sample(rng);
    ASSERT_EQ(x.size(), 3u);
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_GE(x[d], box.lo(d));
      EXPECT_LE(x[d], box.hi(d));
    }
  }
}

TEST(Sampling, SampleMatrixShape) {
  stf::stats::UniformBox box{{1.0, 2.0}, 0.1};
  Rng rng(19);
  auto m = box.sample_matrix(25, rng);
  EXPECT_EQ(m.rows(), 25u);
  EXPECT_EQ(m.cols(), 2u);
}

TEST(Sampling, LatinHypercubeStratification) {
  stf::stats::UniformBox box{{10.0}, 0.5};  // [5, 15]
  Rng rng(23);
  const std::size_t n = 10;
  auto m = stf::stats::latin_hypercube(box, n, rng);
  // Exactly one sample per stratum of width 1.0.
  std::vector<int> counts(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    const double x = m(r, 0);
    EXPECT_GE(x, 5.0);
    EXPECT_LE(x, 15.0);
    auto bin = static_cast<std::size_t>((x - 5.0) / 1.0);
    if (bin == n) bin = n - 1;
    counts[bin]++;
  }
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(Sampling, LatinHypercubeZeroSamplesThrows) {
  stf::stats::UniformBox box{{1.0}, 0.1};
  Rng rng(29);
  EXPECT_THROW(stf::stats::latin_hypercube(box, 0, rng),
               std::invalid_argument);
}

// ---------------------------------------------------------------- metrics --

TEST(Metrics, PerfectPredictionHasZeroError) {
  std::vector<double> t{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(stf::stats::rms_error(t, t), 0.0);
  EXPECT_DOUBLE_EQ(stf::stats::std_error(t, t), 0.0);
  EXPECT_DOUBLE_EQ(stf::stats::max_abs_error(t, t), 0.0);
  EXPECT_DOUBLE_EQ(stf::stats::r_squared(t, t), 1.0);
}

TEST(Metrics, KnownResiduals) {
  std::vector<double> t{0.0, 0.0, 0.0, 0.0};
  std::vector<double> p{1.0, -1.0, 1.0, -1.0};
  EXPECT_DOUBLE_EQ(stf::stats::rms_error(t, p), 1.0);
  EXPECT_DOUBLE_EQ(stf::stats::mean_error(t, p), 0.0);
  EXPECT_DOUBLE_EQ(stf::stats::max_abs_error(t, p), 1.0);
}

TEST(Metrics, StdErrorIgnoresConstantBias) {
  std::vector<double> t{1.0, 2.0, 3.0, 4.0};
  std::vector<double> p{2.0, 3.0, 4.0, 5.0};  // uniform +1 bias
  EXPECT_NEAR(stf::stats::std_error(t, p), 0.0, 1e-12);
  EXPECT_NEAR(stf::stats::rms_error(t, p), 1.0, 1e-12);
  EXPECT_NEAR(stf::stats::mean_error(t, p), 1.0, 1e-12);
}

TEST(Metrics, RSquaredOfMeanPredictorIsZero) {
  std::vector<double> t{1.0, 2.0, 3.0, 4.0};
  std::vector<double> p(4, 2.5);  // predicting the mean
  EXPECT_NEAR(stf::stats::r_squared(t, p), 0.0, 1e-12);
}

TEST(Metrics, SizeMismatchThrows) {
  std::vector<double> a{1.0, 2.0};
  std::vector<double> b{1.0};
  EXPECT_THROW(stf::stats::rms_error(a, b), std::invalid_argument);
}

}  // namespace
