// Tests of the versioned calibration store and the online recalibration
// loop (store/calibration_store.hpp, store/recalibrate.hpp):
//
//   * put/get round-trips bit-exactly through the on-disk bundle --
//     including hostile coefficient values (denormals, -0.0,
//     max-magnitude doubles) -- and versions are immutable and append-only.
//   * A bundle truncated at EVERY byte offset loads as a typed error
//     (StoreError / CalibrationParseError / ScreenParseError), never a
//     crash -- the frame-fuzz discipline applied to the persistence layer.
//   * The LRU+TTL cache serves hot versions from memory under a synthetic
//     caller-supplied clock (no wall-clock reads in the store).
//   * The drift loop closes: a latched drift alarm plus a deep-enough
//     golden window yields one refit, the rollback guard gates it, the
//     accepted candidate hot-swaps without stopping the pipeline, and the
//     swap resets the drift monitor (the PR's reset-semantics regression).
//   * In-flight lots finish on the calibration version they started with,
//     bit-identical to that version's serial reference.
#include "store/calibration_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "circuit/lna900.hpp"
#include "dsp/pwl.hpp"
#include "linalg/matrix.hpp"
#include "rf/dut.hpp"
#include "rf/faults.hpp"
#include "rf/population.hpp"
#include "sigtest/batch.hpp"
#include "sigtest/calibration.hpp"
#include "sigtest/guard.hpp"
#include "sigtest/outlier.hpp"
#include "stats/rng.hpp"
#include "store/recalibrate.hpp"

namespace {

using namespace stf;
namespace fs = std::filesystem;

/// Fresh per-test store root under the system temp dir, removed on exit.
class TempRoot {
 public:
  explicit TempRoot(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("stf_store_test_" + tag + "_" +
                std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
  }
  ~TempRoot() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A small deterministic fitted model + screen (4 bins, 2 specs): enough
/// structure to exercise serialization without a circuit in the loop.
struct SmallCalibration {
  std::shared_ptr<const sigtest::CalibrationModel> model;
  std::shared_ptr<const sigtest::OutlierScreen> screen;
};

SmallCalibration make_small_calibration(std::uint64_t seed = 42) {
  la::Matrix signatures(10, 4), specs(10, 2);
  stats::Rng rng(seed);
  for (std::size_t r = 0; r < signatures.rows(); ++r) {
    std::vector<double> sig = rng.uniform_vector(4, -1.0, 1.0);
    signatures.set_row(r, sig);
    specs.set_row(r, {2.0 * sig[0] + 0.5 * sig[1] + rng.normal(0.0, 0.01),
                      sig[2] - sig[3] + rng.normal(0.0, 0.01)});
  }
  auto model = std::make_shared<sigtest::CalibrationModel>();
  model->fit(signatures, specs);
  auto screen = std::make_shared<sigtest::OutlierScreen>();
  screen->fit(signatures);
  return {std::move(model), std::move(screen)};
}

store::StoreKey small_key() {
  store::StoreKey key;
  key.scenario = "lna:spread=0.2:pop=77";
  return key;
}

/// The one version file of `key` under `root` (fails the test when the
/// layout does not hold exactly one v*.stfcal).
fs::path only_version_file(const std::string& root) {
  fs::path found;
  int count = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() &&
        entry.path().extension() == ".stfcal") {
      found = entry.path();
      ++count;
    }
  }
  EXPECT_EQ(count, 1) << "expected exactly one version bundle under " << root;
  return found;
}

TEST(CalibrationStoreTest, PutGetRoundTripsBitExactAndVersionsAppend) {
  TempRoot root("roundtrip");
  store::CalibrationStore cal_store(root.path());
  const auto key = small_key();
  const auto v1 = make_small_calibration(42);
  const auto v2 = make_small_calibration(43);

  EXPECT_EQ(cal_store.latest_version(key), 0u);
  EXPECT_EQ(cal_store.put(key, v1.model, v1.screen), 1u);
  EXPECT_EQ(cal_store.put(key, v2.model, v2.screen), 2u);
  EXPECT_EQ(cal_store.latest_version(key), 2u);
  EXPECT_EQ(cal_store.versions(key), (std::vector<std::uint64_t>{1, 2}));

  // Survive process "restart": a fresh store over the same root.
  store::CalibrationStore reopened(root.path());
  const auto latest = reopened.get(key);
  EXPECT_EQ(latest.version, 2u);
  const auto old_version = reopened.get(key, 1);
  EXPECT_EQ(old_version.version, 1u);
  ASSERT_NE(latest.model, nullptr);
  ASSERT_NE(old_version.screen, nullptr);

  // Bit-exact round trip: identical predictions and screen scores on
  // fresh signatures (the wire carries raw f64 semantics end to end).
  stats::Rng rng(7);
  for (int i = 0; i < 16; ++i) {
    const sigtest::Signature sig = rng.uniform_vector(4, -2.0, 2.0);
    const auto want1 = v1.model->predict(sig);
    const auto got1 = old_version.model->predict(sig);
    const auto want2 = v2.model->predict(sig);
    const auto got2 = latest.model->predict(sig);
    ASSERT_EQ(want1.size(), got1.size());
    for (std::size_t s = 0; s < want1.size(); ++s) {
      EXPECT_EQ(want1[s], got1[s]) << "v1 spec " << s;
      EXPECT_EQ(want2[s], got2[s]) << "v2 spec " << s;
    }
    EXPECT_EQ(v1.screen->score(sig), old_version.screen->score(sig));
    EXPECT_EQ(v2.screen->score(sig), latest.screen->score(sig));
  }

  // Model-only persistence: the screen comes back null, never invented.
  EXPECT_EQ(cal_store.put(key, v1.model), 3u);
  EXPECT_EQ(store::CalibrationStore(root.path()).get(key, 3).screen, nullptr);
}

TEST(CalibrationStoreTest, HostileCoefficientsSurviveThePersistLoadCycle) {
  // Adversarial doubles straight through serialize -> bundle -> disk ->
  // parse: denormal minimum, negative zero, largest finite magnitudes.
  // The text layer must reproduce each bit pattern exactly; predict()
  // through the loaded model must match the original bit for bit.
  constexpr double kDenormal = std::numeric_limits<double>::denorm_min();
  constexpr double kMax = std::numeric_limits<double>::max();
  const std::string hostile_text =
      "sigtest-calibration v1\n"
      "poly_degree 1\n"
      "ridge_lambda 0.01\n"
      "min_bin_snr 1\n"
      "bin_mean 2 -0 4.9406564584124654e-324\n"
      "bin_scale 2 1 1.7976931348623157e+308\n"
      "bin_alive 2 1 1\n"
      "spec_mean 1 -0\n"
      "spec_scale 1 2.2250738585072014e-308\n"
      "weights 1 3 4.9406564584124654e-324 -1.7976931348623157e+308 -0\n";
  auto model = std::make_shared<const sigtest::CalibrationModel>(
      sigtest::CalibrationModel::deserialize(hostile_text));

  TempRoot root("hostile");
  store::CalibrationStore cal_store(root.path());
  const auto key = small_key();
  ASSERT_EQ(cal_store.put(key, model), 1u);
  const auto loaded = store::CalibrationStore(root.path()).get(key);
  ASSERT_NE(loaded.model, nullptr);

  const std::vector<sigtest::Signature> probes = {
      {0.0, 0.0},
      {kDenormal, -kDenormal},
      {-0.0, kMax},
      {1.0, -1.0},
  };
  for (const auto& sig : probes) {
    const auto want = model->predict(sig);
    const auto got = loaded.model->predict(sig);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t s = 0; s < want.size(); ++s) {
      EXPECT_EQ(std::signbit(want[s]), std::signbit(got[s]));
      EXPECT_EQ(want[s], got[s]);
    }
  }
  // The serialized forms themselves must agree byte for byte.
  EXPECT_EQ(model->serialize(), loaded.model->serialize());
}

TEST(CalibrationStoreTest, TruncationAtEveryByteFailsTyped) {
  TempRoot root("truncate");
  const auto key = small_key();
  {
    store::CalibrationStore writer(root.path());
    const auto cal = make_small_calibration();
    ASSERT_EQ(writer.put(key, cal.model, cal.screen), 1u);
  }
  const fs::path bundle = only_version_file(root.path());
  std::string full;
  {
    std::ifstream in(bundle, std::ios::binary);
    ASSERT_TRUE(in.good());
    full.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(full.size(), 100u);

  for (std::size_t len = 0; len < full.size(); ++len) {
    {
      std::ofstream out(bundle, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(len));
    }
    // Fresh store each probe: only successful loads may be cached.
    store::CalibrationStore reader(root.path());
    try {
      (void)reader.get(key, 1);
      FAIL() << "truncation to " << len << " bytes parsed successfully";
    } catch (const store::StoreError&) {
    } catch (const sigtest::CalibrationParseError&) {
    } catch (const sigtest::ScreenParseError&) {
    }
    // Any other exception type (or a crash) fails the harness.
  }

  // Restore and confirm the intact bundle still loads.
  {
    std::ofstream out(bundle, std::ios::binary | std::ios::trunc);
    out << full;
  }
  EXPECT_EQ(store::CalibrationStore(root.path()).get(key, 1).version, 1u);

  // Trailing garbage after the trailer is also a typed failure.
  {
    std::ofstream out(bundle, std::ios::binary | std::ios::trunc);
    out << full << "extra";
  }
  EXPECT_THROW(store::CalibrationStore(root.path()).get(key, 1),
               store::StoreError);
}

TEST(CalibrationStoreTest, CacheServesWithinTtlUnderSyntheticClock) {
  TempRoot root("ttl");
  store::StoreOptions options;
  options.ttl_us = 1'000'000;
  store::CalibrationStore cal_store(root.path(), options);
  const auto key = small_key();
  const auto cal = make_small_calibration();
  ASSERT_EQ(cal_store.put(key, cal.model, cal.screen, /*now_us=*/0), 1u);

  // Remove the bundle behind the cache's back: a fresh-enough entry is
  // served from memory (no disk read), a TTL-expired one must fall back
  // to disk and fail typed.
  fs::remove(only_version_file(root.path()));
  EXPECT_EQ(cal_store.get(key, 1, /*now_us=*/999'999).version, 1u);
  EXPECT_THROW((void)cal_store.get(key, 1, /*now_us=*/2'000'000),
               store::StoreError);
  EXPECT_EQ(cal_store.cache_size(), 0u) << "expired entry must be dropped";
}

TEST(CalibrationStoreTest, LruBoundsTheCacheAndEvictIsCacheOnly) {
  TempRoot root("lru");
  store::StoreOptions options;
  options.cache_capacity = 1;
  store::CalibrationStore cal_store(root.path(), options);
  const auto key = small_key();
  const auto cal = make_small_calibration();
  ASSERT_EQ(cal_store.put(key, cal.model, cal.screen), 1u);
  ASSERT_EQ(cal_store.put(key, cal.model, cal.screen), 2u);
  EXPECT_EQ(cal_store.cache_size(), 1u) << "capacity 1 must hold";

  EXPECT_EQ(cal_store.evict(key), 1u);
  EXPECT_EQ(cal_store.cache_size(), 0u);
  // Disk untouched: both versions still load.
  EXPECT_EQ(cal_store.get(key, 1).version, 1u);
  EXPECT_EQ(cal_store.get(key, 2).version, 2u);
}

TEST(CalibrationStoreTest, KeysListsAndPruneDeletesOldVersions) {
  TempRoot root("keys");
  store::CalibrationStore cal_store(root.path());
  const auto cal = make_small_calibration();
  store::StoreKey key_a = small_key();
  store::StoreKey key_b = small_key();
  key_b.scenario = "lna:spread=0.1:pop=5";
  key_b.temp_bin_c = 85;
  ASSERT_EQ(cal_store.put(key_a, cal.model, cal.screen), 1u);
  ASSERT_EQ(cal_store.put(key_a, cal.model, cal.screen), 2u);
  ASSERT_EQ(cal_store.put(key_a, cal.model, cal.screen), 3u);
  ASSERT_EQ(cal_store.put(key_b, cal.model, cal.screen), 1u);

  const auto keys = store::CalibrationStore(root.path()).keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_TRUE((keys[0] == key_a && keys[1] == key_b) ||
              (keys[0] == key_b && keys[1] == key_a));

  EXPECT_EQ(cal_store.prune(key_a, /*keep_from=*/3), 2u);
  EXPECT_EQ(cal_store.versions(key_a), (std::vector<std::uint64_t>{3}));
  EXPECT_THROW((void)cal_store.get(key_a, 1), store::StoreError);
  EXPECT_EQ(cal_store.get(key_a, 3).version, 3u);
  EXPECT_EQ(cal_store.versions(key_b), (std::vector<std::uint64_t>{1}));
}

TEST(CalibrationStoreTest, MissingKeysAndVersionsAreTypedErrors) {
  TempRoot root("missing");
  store::CalibrationStore cal_store(root.path());
  const auto key = small_key();
  EXPECT_THROW((void)cal_store.get(key), store::StoreError);
  const auto cal = make_small_calibration();
  ASSERT_EQ(cal_store.put(key, cal.model, cal.screen), 1u);
  EXPECT_THROW((void)cal_store.get(key, 99), store::StoreError);
}

// ---------------------------------------------------------------------------
// The online recalibration loop, over a real calibrated runtime.

constexpr std::size_t kCalDevices = 12;
constexpr std::size_t kGoldens = 4;

/// One calibrated BatchRuntime + a handful of golden devices, built once
/// (characterization dominates the suite's cost).
struct RecalWorld {
  std::shared_ptr<sigtest::BatchRuntime> runtime_template;
  std::vector<rf::DeviceRecord> goldens;
  std::vector<rf::DeviceRecord> lot;

  RecalWorld()
      : runtime_template(make_runtime()),
        goldens(rf::make_lna_population(kGoldens, 0.05, 99)),
        lot(rf::make_lna_population(10, 0.2, 77)) {}

  static std::shared_ptr<sigtest::BatchRuntime> make_runtime() {
    const auto config = sigtest::SignatureTestConfig::simulation_study();
    sigtest::GuardPolicy policy;
    policy.outlier_threshold = 2.5;
    auto runtime = std::make_shared<sigtest::BatchRuntime>(
        config, stimulus(), circuit::LnaSpecs::names(), policy,
        sigtest::BatchOptions{4, 2});
    const auto cal = rf::make_lna_population(kCalDevices, 0.2, 21);
    stats::Rng rng(7);
    runtime->calibrate(cal, rng);
    return runtime;
  }

  /// A fresh runtime with the template's calibration (version 1) but its
  /// own drift/swap state, so tests never contaminate each other.
  std::shared_ptr<sigtest::BatchRuntime> fresh_runtime() const {
    return std::make_shared<sigtest::BatchRuntime>(*runtime_template);
  }

  static dsp::PwlWaveform stimulus() {
    const auto cfg = sigtest::SignatureTestConfig::simulation_study();
    return dsp::PwlWaveform::uniform(
        cfg.capture_s, {0.0, 0.2, -0.2, 0.1, -0.05, 0.2, 0.0, -0.2, 0.1});
  }
};

RecalWorld& recal_world() {
  static RecalWorld world;
  return world;
}

store::RecalPolicy small_policy() {
  store::RecalPolicy policy;
  policy.window_capacity = 48;
  policy.min_refit_rows = 16;
  return policy;
}

TEST(RecalibratorTest, DriftAlarmDrivesOneRefitSwapAndPersist) {
  TempRoot root("driftloop");
  auto cal_store = std::make_shared<store::CalibrationStore>(root.path());
  auto runtime = recal_world().fresh_runtime();
  store::Recalibrator recal(runtime, cal_store, small_key(), small_policy());

  const auto& goldens = recal_world().goldens;
  const rf::FaultInjector drift{{rf::FaultSpec::gain_drift(4e-3)}};
  stats::Rng rng(13);

  // Stream drifting golden checks (rotating through the golden set so the
  // refit window spans real device diversity) until the alarm latches,
  // then keep going until the window is deep enough post-alarm.
  bool alarmed = false;
  std::uint64_t sequence = 0;
  while (!alarmed || recal.window_rows() < small_policy().min_refit_rows) {
    ASSERT_LT(sequence, 400u) << "drift never latched the alarm";
    const auto& golden = goldens[sequence % goldens.size()];
    const auto status = recal.observe_golden(
        *golden.dut, golden.specs.to_vector(), rng, &drift, sequence);
    alarmed = alarmed || status.alarm;
    ++sequence;
  }
  ASSERT_TRUE(runtime->guarded().recalibration_needed());
  EXPECT_EQ(runtime->guarded().calibration().version, 1u);

  const auto report = recal.maybe_recalibrate();
  EXPECT_TRUE(report.attempted);
  EXPECT_TRUE(report.swapped) << "candidate err " << report.candidate_error
                              << " vs current " << report.current_error;
  EXPECT_FALSE(report.rolled_back);
  EXPECT_EQ(report.version, 2u);
  EXPECT_LT(report.candidate_error, report.current_error)
      << "refit on drifted-path goldens must beat the pre-drift model";

  // The swap is visible, persisted, and resets the drift monitor.
  EXPECT_EQ(runtime->guarded().calibration().version, 2u);
  EXPECT_FALSE(runtime->guarded().recalibration_needed());
  EXPECT_EQ(runtime->guarded().drift_checks(), 0u);
  EXPECT_EQ(cal_store->latest_version(recal.key()), 1u)
      << "the swapped-in model is version 1 in a fresh store";
  EXPECT_EQ(recal.refits(), 1u);
  EXPECT_EQ(recal.swaps(), 1u);
  EXPECT_EQ(recal.rollbacks(), 0u);
  EXPECT_EQ(recal.window_rows(), 0u)
      << "a successful swap must retire the pre-swap window";

  // No alarm, no refit: the loop is quiescent after recovery.
  const auto idle = recal.maybe_recalibrate();
  EXPECT_FALSE(idle.attempted);
  EXPECT_EQ(recal.refits(), 1u);
}

TEST(RecalibratorTest, PoisonedWindowRollsBackAndKeepsTheLiveVersion) {
  auto runtime = recal_world().fresh_runtime();
  store::Recalibrator recal(runtime, nullptr, small_key(), small_policy());
  const auto& goldens = recal_world().goldens;
  stats::Rng rng(17);

  // Harvest one clean signature to shape the poison rows.
  sigtest::Signature clean_sig;
  (void)runtime->guarded().monitor_golden(*goldens[0].dut, rng, nullptr, 0,
                                          &clean_sig);
  runtime->guarded().reset_drift_monitor();
  ASSERT_FALSE(clean_sig.empty());

  // Poison FIRST (it becomes the training split), clean goldens LAST
  // (they become the holdout): the poison rows carry plausible signatures
  // but wildly wrong spec labels, so the candidate learns a corrupted
  // mapping, is judged on truth, and the rollback guard must fire
  // deterministically.
  for (int i = 0; i < 14; ++i) {
    sigtest::Signature near_clean = clean_sig;
    for (std::size_t b = 0; b < near_clean.size(); ++b)
      near_clean[b] *= 1.0 + 0.01 * static_cast<double>((i + b) % 5);
    auto wrong_specs = goldens[i % goldens.size()].specs.to_vector();
    for (double& s : wrong_specs) s += 25.0;
    recal.push_window(near_clean, wrong_specs);
  }
  for (std::uint64_t s = 0; s < 8; ++s) {
    const auto& golden = goldens[s % goldens.size()];
    (void)recal.observe_golden(*golden.dut, golden.specs.to_vector(), rng,
                               nullptr, s);
  }

  const auto report = recal.recalibrate_now();
  EXPECT_TRUE(report.attempted);
  EXPECT_TRUE(report.rolled_back);
  EXPECT_FALSE(report.swapped);
  EXPECT_EQ(report.version, 1u) << "a rolled-back refit must keep version 1";
  EXPECT_GT(report.candidate_error, report.current_error);
  EXPECT_EQ(runtime->guarded().calibration().version, 1u);
  EXPECT_EQ(recal.rollbacks(), 1u);
  EXPECT_EQ(recal.swaps(), 0u);
}

// The PR's drift-monitor reset regression: swapping in a new calibration
// must clear the latched alarm, the smoothed EWMA, AND the sample count --
// a swap that leaked the old EWMA would instantly re-alarm a fresh model.
TEST(RecalibratorTest, SwapResetsAlarmEwmaAndSampleCount) {
  auto runtime = recal_world().fresh_runtime();
  auto& guarded = runtime->guarded();
  const auto& golden = recal_world().goldens[0];
  const rf::FaultInjector drift{{rf::FaultSpec::gain_drift(4e-3)}};
  stats::Rng rng(19);

  bool alarmed = false;
  for (std::uint64_t s = 0; s < 300 && !alarmed; ++s)
    alarmed = guarded.monitor_golden(*golden.dut, rng, &drift, s).alarm;
  ASSERT_TRUE(alarmed);
  ASSERT_TRUE(guarded.recalibration_needed());
  ASSERT_GT(guarded.drift_checks(), 0u);

  // Swap the existing calibration back in (content is irrelevant; the
  // version bump and state reset are what's under test).
  const auto cal = guarded.calibration();
  const std::uint64_t v = guarded.swap_calibration(cal.model, cal.screen);
  EXPECT_EQ(v, 2u);
  EXPECT_FALSE(guarded.recalibration_needed()) << "alarm must clear on swap";
  EXPECT_EQ(guarded.drift_checks(), 0u) << "sample count must clear on swap";

  // First post-swap check seeds the EWMA from scratch: ewma == score, with
  // no contribution from the pre-swap drifted history.
  const auto status = guarded.monitor_golden(*golden.dut, rng);
  EXPECT_EQ(status.ewma, status.score) << "EWMA must re-seed after swap";
  EXPECT_FALSE(status.alarm);
}

TEST(RecalibratorTest, InFlightLotsPinTheirStartingVersionBitExactly) {
  auto runtime = recal_world().fresh_runtime();
  const auto& lot_records = recal_world().lot;
  std::vector<const rf::RfDut*> lot;
  for (const auto& record : lot_records) lot.push_back(record.dut.get());
  constexpr std::uint64_t kSeed = 9001;

  // Serial references on both calibration versions. Version 2 is a refit
  // on a deterministic alternate training set.
  auto reference = [&](const sigtest::BatchRuntime& rt) {
    const stats::Rng base(kSeed);
    std::vector<sigtest::TestDisposition> out(lot.size());
    for (std::size_t i = 0; i < lot.size(); ++i) {
      stats::Rng child = base.derive(i);
      out[i] = rt.guarded().test_device(*lot[i], child, nullptr, i);
    }
    return out;
  };
  const auto reference_v1 = reference(*runtime);

  auto alternate = recal_world().fresh_runtime();
  {
    const auto training = rf::make_lna_population(kCalDevices, 0.2, 33);
    stats::Rng rng(11);
    alternate->calibrate(training, rng);
  }
  const auto next = alternate->guarded().calibration();

  // Reference for the swapped state: apply the same swap to a clone.
  auto swapped_clone = recal_world().fresh_runtime();
  ASSERT_EQ(swapped_clone->guarded().swap_calibration(next.model, next.screen),
            2u);
  const auto reference_v2 = reference(*swapped_clone);

  auto check = [&](const sigtest::LotResult& result) {
    ASSERT_TRUE(result.model_version == 1u || result.model_version == 2u);
    const auto& want =
        result.model_version == 1u ? reference_v1 : reference_v2;
    ASSERT_EQ(result.dispositions.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(result.dispositions[i].kind, want[i].kind) << i;
      EXPECT_EQ(result.dispositions[i].outlier_score, want[i].outlier_score)
          << i;
      ASSERT_EQ(result.dispositions[i].predicted.size(),
                want[i].predicted.size());
      for (std::size_t s = 0; s < want[i].predicted.size(); ++s)
        EXPECT_EQ(result.dispositions[i].predicted[s], want[i].predicted[s])
            << "device " << i << " spec " << s;
    }
  };

  // Lots race a hot swap: every lot must land on exactly one version's
  // serial reference -- never a mix -- and the pipeline never stops.
  std::atomic<bool> go{false};
  std::vector<sigtest::LotResult> results(6);
  std::thread tester([&] {
    while (!go.load()) {
    }
    for (auto& result : results)
      result = runtime->test_lot(lot, stats::Rng(kSeed), nullptr, 0);
  });
  std::thread swapper([&] {
    while (!go.load()) {
    }
    (void)runtime->guarded().swap_calibration(next.model, next.screen);
  });
  go.store(true);
  tester.join();
  swapper.join();

  for (const auto& result : results) check(result);
  // And after the dust settles the runtime serves version 2 exactly.
  const auto settled = runtime->test_lot(lot, stats::Rng(kSeed), nullptr, 0);
  EXPECT_EQ(settled.model_version, 2u);
  check(settled);
}

}  // namespace
