// Unit tests for the telemetry layer (core/telemetry.hpp): span nesting and
// aggregation, counter atomicity under parallel_for, histogram statistics,
// worker-span attachment to the dispatching region, Chrome-trace JSON
// validity, disabled-mode no-op guarantees, and reset semantics.
#include "core/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.hpp"

namespace {

namespace telem = stf::core::telemetry;

/// Pin the pool width for one test and restore the environment-resolved
/// default afterwards, so tests compose in any order.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t n) { stf::core::set_thread_count(n); }
  ~ThreadCountGuard() { stf::core::set_thread_count(0); }
};

/// Enabled-collection fixture: every test starts from a clean slate and
/// leaves telemetry off. Tests that need collection skip themselves when the
/// build compiled the layer out.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!telem::compiled())
      GTEST_SKIP() << "built with SIGTEST_TELEMETRY=OFF";
    telem::set_enabled(true);
    telem::reset();
  }
  void TearDown() override {
    if (telem::compiled()) {
      telem::set_enabled(false);
      telem::reset();
    }
  }
};

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator: enough to prove the exporters
// emit structurally valid JSON without depending on a parser library.
// ---------------------------------------------------------------------------
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST_F(TelemetryTest, SpanStatsCountAndNesting) {
  {
    STF_TRACE_SPAN("test.outer");
    for (int i = 0; i < 3; ++i) { STF_TRACE_SPAN("test.inner"); }
  }
  const telem::SpanStats outer = telem::span_stats("test.outer");
  const telem::SpanStats inner = telem::span_stats("test.inner");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(outer.max_depth, 0u);
  EXPECT_EQ(inner.count, 3u);
  EXPECT_EQ(inner.max_depth, 1u);
  EXPECT_GE(outer.total_ns, inner.total_ns);
  EXPECT_LE(inner.min_ns, inner.max_ns);
  EXPECT_EQ(telem::span_stats("test.never_recorded").count, 0u);
}

TEST_F(TelemetryTest, CountersAreExactUnderParallelFor) {
  ThreadCountGuard guard(4);
  constexpr std::size_t kN = 100000;
  stf::core::parallel_for(0, kN, [](std::size_t) {
    STF_COUNT("test.parallel_hits");
  });
  EXPECT_EQ(telem::counter_value("test.parallel_hits"), kN);
}

TEST_F(TelemetryTest, CountDeltaAndCachedReference) {
  STF_COUNT("test.delta", 5);
  STF_COUNT("test.delta", 7);
  EXPECT_EQ(telem::counter_value("test.delta"), 12u);
  telem::Counter& c = telem::counter("test.delta");
  c.add(3);
  EXPECT_EQ(telem::counter_value("test.delta"), 15u);
}

TEST_F(TelemetryTest, HistogramStats) {
  STF_RECORD("test.hist", 1.0);
  STF_RECORD("test.hist", 2.0);
  STF_RECORD("test.hist", 6.0);
  const telem::HistogramStats h = telem::histogram_stats("test.hist");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 9.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 6.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_EQ(telem::histogram_stats("test.never").count, 0u);
}

TEST_F(TelemetryTest, WorkerSpansAttachUnderDispatchingRegion) {
  // 4 participants (caller + 3 pool workers), 4 items at grain 1, and each
  // body spins until all 4 have arrived -- so every participant claims
  // exactly one chunk and the 3 workers each record a participation span
  // keyed "<region>/workers".
  ThreadCountGuard guard(4);
  std::atomic<int> arrived{0};
  {
    STF_TRACE_SPAN("test.region");
    stf::core::parallel_for(
        0, 4,
        [&](std::size_t) {
          arrived.fetch_add(1);
          const auto deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(10);
          while (arrived.load() < 4 &&
                 std::chrono::steady_clock::now() < deadline)
            std::this_thread::yield();
        },
        1);
  }
  ASSERT_EQ(arrived.load(), 4);
  // parallel_for unblocks once every chunk is done, but each worker records
  // its participation span only after leaving the job -- wait (bounded) for
  // the stragglers to flush before asserting.
  const auto flush_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (telem::span_stats("test.region/workers").count < 3 &&
         std::chrono::steady_clock::now() < flush_deadline)
    std::this_thread::yield();
  const telem::SpanStats workers = telem::span_stats("test.region/workers");
  EXPECT_EQ(workers.count, 3u);
  EXPECT_EQ(workers.threads, 3u);
  EXPECT_EQ(telem::span_stats("test.region").count, 1u);
}

TEST_F(TelemetryTest, ChromeTraceIsValidJsonWithExpectedEvents) {
  {
    STF_TRACE_SPAN("test.trace_span");
    STF_COUNT("test.trace_counter");
  }
  const std::string trace = telem::chrome_trace();
  EXPECT_TRUE(JsonValidator(trace).valid()) << trace.substr(0, 400);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("test.trace_span"), std::string::npos);
  EXPECT_NE(trace.find("test.trace_counter"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"M\""), std::string::npos);  // thread names
}

TEST_F(TelemetryTest, ToJsonAndSummaryAreWellFormed) {
  {
    STF_TRACE_SPAN("test.json_span");
    STF_RECORD("test.json_hist", 2.5);
  }
  const std::string json = telem::to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("test.json_span"), std::string::npos);
  const std::string table = telem::summary();
  EXPECT_NE(table.find("test.json_span"), std::string::npos);
  EXPECT_NE(table.find("test.json_hist"), std::string::npos);
}

TEST_F(TelemetryTest, ResetClearsCollectedData) {
  { STF_TRACE_SPAN("test.reset_span"); }
  STF_COUNT("test.reset_counter");
  STF_RECORD("test.reset_hist", 1.0);
  ASSERT_GE(telem::span_event_count(), 1u);
  telem::reset();
  EXPECT_EQ(telem::span_event_count(), 0u);
  EXPECT_EQ(telem::counter_value("test.reset_counter"), 0u);
  EXPECT_EQ(telem::histogram_stats("test.reset_hist").count, 0u);
  EXPECT_EQ(telem::span_stats("test.reset_span").count, 0u);
}

TEST_F(TelemetryTest, EventCapBoundsMemoryAndSurfacesDrops) {
  const std::size_t saved = telem::max_events_per_thread();
  telem::set_max_events_per_thread(8);
  EXPECT_EQ(telem::max_events_per_thread(), 8u);
  telem::reset();  // the cap applies per reset epoch
  for (int i = 0; i < 24; ++i) {
    STF_TRACE_SPAN("test.capped_span");
  }
  EXPECT_LE(telem::span_event_count(), 8u);
  EXPECT_GE(telem::dropped_event_count(), 16u);
  // Dropped events must be visible, not silent: summary() flags them and
  // to_json() exports the count for CI assertions.
  EXPECT_NE(telem::summary().find("DROPPED"), std::string::npos);
  const std::string json = telem::to_json();
  ASSERT_NE(json.find("\"dropped_events\":"), std::string::npos);
  EXPECT_EQ(json.find("\"dropped_events\":0"), std::string::npos);

  telem::set_max_events_per_thread(0);  // 0 restores the built-in default
  EXPECT_GT(telem::max_events_per_thread(), 8u);
  telem::set_max_events_per_thread(saved);
  telem::reset();
  EXPECT_EQ(telem::dropped_event_count(), 0u);
}

TEST_F(TelemetryTest, RepeatedExportsOfTheSameStateAreByteIdentical) {
  // The exporters feed golden files, CI artifacts and cross-run diffs, so
  // their output must be a pure function of the collected state: counters
  // and histograms are exported in sorted key order (never raw
  // unordered_map order, which is hash-seed-dependent), and no timestamps
  // or addresses leak in. Two exports of the same state must match byte
  // for byte.
  { STF_TRACE_SPAN("test.export_span"); }
  STF_COUNT("test.export_counter_b", 2);
  STF_COUNT("test.export_counter_a");
  STF_COUNT("test.export_counter_c", 7);
  STF_RECORD("test.export_hist_z", 1.5);
  STF_RECORD("test.export_hist_a", -3.0);
  stf::core::parallel_for(0, 64, [](std::size_t) {
    STF_TRACE_SPAN("test.export_worker_span");
  });

  EXPECT_EQ(telem::summary(), telem::summary());
  EXPECT_EQ(telem::to_json(), telem::to_json());
  EXPECT_EQ(telem::chrome_trace(), telem::chrome_trace());

  // Sorted-key contract, spot-checked on the JSON export.
  const std::string json = telem::to_json();
  const auto pos_a = json.find("test.export_counter_a");
  const auto pos_b = json.find("test.export_counter_b");
  const auto pos_c = json.find("test.export_counter_c");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  ASSERT_NE(pos_c, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
  EXPECT_LT(pos_b, pos_c);
  const auto hist_a = json.find("test.export_hist_a");
  const auto hist_z = json.find("test.export_hist_z");
  ASSERT_NE(hist_a, std::string::npos);
  ASSERT_NE(hist_z, std::string::npos);
  EXPECT_LT(hist_a, hist_z);
}

TEST(TelemetryDisabled, NothingIsRecordedAndValueIsNotEvaluated) {
  if (!telem::compiled()) GTEST_SKIP() << "built with SIGTEST_TELEMETRY=OFF";
  telem::set_enabled(false);
  telem::reset();
  int evaluations = 0;
  const auto expensive = [&]() {
    ++evaluations;
    return 1.0;
  };
  { STF_TRACE_SPAN("test.disabled_span"); }
  STF_COUNT("test.disabled_counter");
  STF_RECORD("test.disabled_hist", expensive());
  EXPECT_EQ(evaluations, 0) << "STF_RECORD evaluated its value while off";
  EXPECT_EQ(telem::span_event_count(), 0u);
  EXPECT_EQ(telem::counter_value("test.disabled_counter"), 0u);
  EXPECT_EQ(telem::histogram_stats("test.disabled_hist").count, 0u);
}

TEST(TelemetryDisabled, TogglingMidSpanStillClosesCleanly) {
  if (!telem::compiled()) GTEST_SKIP() << "built with SIGTEST_TELEMETRY=OFF";
  telem::set_enabled(true);
  telem::reset();
  {
    STF_TRACE_SPAN("test.toggle_span");
    telem::set_enabled(false);
  }
  // The span captured the gate at construction, so it still records.
  EXPECT_EQ(telem::span_stats("test.toggle_span").count, 1u);
  telem::reset();
}

}  // namespace
