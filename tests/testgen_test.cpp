// Tests for the genetic algorithm and the PWL genome encoding.
#include <atomic>
#include <cmath>

#include <gtest/gtest.h>

#include "testgen/ga.hpp"
#include "testgen/pwl_encoding.hpp"

namespace {

using namespace stf::testgen;

TEST(Ga, MinimizesSphereFunction) {
  const auto sphere = [](const std::vector<double>& x) {
    double s = 0.0;
    for (double v : x) s += v * v;
    return s;
  };
  GaOptions opts;
  opts.population = 40;
  opts.generations = 60;
  opts.seed = 5;
  auto r = ga_minimize(sphere, std::vector<double>(4, -5.0),
                       std::vector<double>(4, 5.0), opts);
  EXPECT_LT(r.best_fitness, 0.05);
  for (double g : r.best_genes) EXPECT_NEAR(g, 0.0, 0.3);
}

TEST(Ga, MinimizesShiftedQuadratic) {
  const auto obj = [](const std::vector<double>& x) {
    return (x[0] - 2.0) * (x[0] - 2.0) + (x[1] + 1.0) * (x[1] + 1.0);
  };
  GaOptions opts;
  opts.population = 30;
  opts.generations = 80;
  opts.seed = 11;
  auto r = ga_minimize(obj, {-5.0, -5.0}, {5.0, 5.0}, opts);
  EXPECT_NEAR(r.best_genes[0], 2.0, 0.2);
  EXPECT_NEAR(r.best_genes[1], -1.0, 0.2);
}

TEST(Ga, MultimodalRastriginFindsGoodBasin) {
  // Not required to find the global optimum, but must land well below the
  // average function value (~10 per dimension).
  const auto rastrigin = [](const std::vector<double>& x) {
    double s = 10.0 * static_cast<double>(x.size());
    for (double v : x)
      s += v * v - 10.0 * std::cos(2.0 * M_PI * v);
    return s;
  };
  GaOptions opts;
  opts.population = 60;
  opts.generations = 100;
  opts.seed = 17;
  auto r = ga_minimize(rastrigin, std::vector<double>(3, -5.12),
                       std::vector<double>(3, 5.12), opts);
  EXPECT_LT(r.best_fitness, 5.0);
}

TEST(Ga, HistoryIsMonotoneNonIncreasing) {
  const auto obj = [](const std::vector<double>& x) {
    return std::abs(x[0] - 0.3);
  };
  GaOptions opts;
  opts.population = 10;
  opts.generations = 20;
  opts.seed = 23;
  auto r = ga_minimize(obj, {-1.0}, {1.0}, opts);
  ASSERT_EQ(r.history.size(), 20u);
  for (std::size_t i = 1; i < r.history.size(); ++i)
    EXPECT_LE(r.history[i], r.history[i - 1]);
}

TEST(Ga, DeterministicForSameSeed) {
  const auto obj = [](const std::vector<double>& x) { return x[0] * x[0]; };
  GaOptions opts;
  opts.seed = 31;
  auto a = ga_minimize(obj, {-1.0}, {1.0}, opts);
  auto b = ga_minimize(obj, {-1.0}, {1.0}, opts);
  EXPECT_DOUBLE_EQ(a.best_fitness, b.best_fitness);
  EXPECT_EQ(a.best_genes, b.best_genes);
}

TEST(Ga, RespectsBounds) {
  // Optimum outside the box: the GA must return the boundary region.
  const auto obj = [](const std::vector<double>& x) {
    return (x[0] - 10.0) * (x[0] - 10.0);
  };
  GaOptions opts;
  opts.population = 20;
  opts.generations = 40;
  opts.seed = 37;
  auto r = ga_minimize(obj, {-1.0}, {1.0}, opts);
  EXPECT_LE(r.best_genes[0], 1.0);
  EXPECT_GE(r.best_genes[0], -1.0);
  EXPECT_NEAR(r.best_genes[0], 1.0, 1e-6);
}

TEST(Ga, EvaluationBudgetAccounting) {
  // Atomic: the GA evaluates each generation's population concurrently
  // through the parallel core (see testgen/ga.hpp thread-safety note).
  std::atomic<int> calls{0};
  const auto obj = [&calls](const std::vector<double>& x) {
    ++calls;
    return x[0];
  };
  GaOptions opts;
  opts.population = 8;
  opts.generations = 5;
  opts.elite = 2;
  opts.seed = 41;
  auto r = ga_minimize(obj, {0.0}, {1.0}, opts);
  EXPECT_EQ(static_cast<int>(r.evaluations), calls.load());
  // Initial population + (population - elite) per generation.
  EXPECT_EQ(calls.load(), 8 + 5 * (8 - 2));
}

TEST(Ga, InvalidArgumentsThrow) {
  const auto obj = [](const std::vector<double>& x) { return x[0]; };
  GaOptions opts;
  EXPECT_THROW(ga_minimize(nullptr, {0.0}, {1.0}, opts),
               std::invalid_argument);
  EXPECT_THROW(ga_minimize(obj, {}, {}, opts), std::invalid_argument);
  EXPECT_THROW(ga_minimize(obj, {1.0}, {0.0}, opts), std::invalid_argument);
  opts.population = 1;
  EXPECT_THROW(ga_minimize(obj, {0.0}, {1.0}, opts), std::invalid_argument);
  opts.population = 10;
  opts.elite = 10;
  EXPECT_THROW(ga_minimize(obj, {0.0}, {1.0}, opts), std::invalid_argument);
}

// ------------------------------------------------------------ PwlEncoding --

TEST(PwlEncoding, DecodeProducesUniformBreakpoints) {
  PwlEncoding enc;
  enc.n_breakpoints = 4;
  enc.duration_s = 3e-6;
  auto w = enc.decode({0.1, -0.2, 0.3, 0.0});
  ASSERT_EQ(w.points().size(), 4u);
  EXPECT_DOUBLE_EQ(w.points()[1].t, 1e-6);
  EXPECT_DOUBLE_EQ(w.points()[1].v, -0.2);
  EXPECT_DOUBLE_EQ(w.duration(), 3e-6);
}

TEST(PwlEncoding, EncodeDecodeRoundTrip) {
  PwlEncoding enc;
  enc.n_breakpoints = 6;
  std::vector<double> genes{0.0, 0.1, -0.1, 0.2, -0.2, 0.05};
  auto w = enc.decode(genes);
  EXPECT_EQ(enc.encode(w), genes);
}

TEST(PwlEncoding, BoundsVectors) {
  PwlEncoding enc;
  enc.n_breakpoints = 5;
  enc.v_min = -0.3;
  enc.v_max = 0.4;
  auto lo = enc.lower_bounds();
  auto hi = enc.upper_bounds();
  ASSERT_EQ(lo.size(), 5u);
  for (double v : lo) EXPECT_DOUBLE_EQ(v, -0.3);
  for (double v : hi) EXPECT_DOUBLE_EQ(v, 0.4);
}

TEST(PwlEncoding, WrongGenomeLengthThrows) {
  PwlEncoding enc;
  enc.n_breakpoints = 4;
  EXPECT_THROW(enc.decode({0.1, 0.2}), std::invalid_argument);
}

TEST(PwlEncoding, GaOptimizesPwlTowardTarget) {
  // End-to-end: find breakpoints approximating a triangle waveform by
  // matching rendered samples.
  PwlEncoding enc;
  enc.n_breakpoints = 5;
  enc.duration_s = 1.0;
  enc.v_min = -1.0;
  enc.v_max = 1.0;
  std::vector<double> target{0.0, 0.5, 1.0, 0.5, 0.0};
  const auto obj = [&](const std::vector<double>& genes) {
    auto w = enc.decode(genes);
    double err = 0.0;
    for (std::size_t i = 0; i < 5; ++i) {
      const double d = w.sample(static_cast<double>(i) * 0.25) - target[i];
      err += d * d;
    }
    return err;
  };
  GaOptions opts;
  opts.population = 40;
  opts.generations = 60;
  opts.seed = 43;
  auto r = ga_minimize(obj, enc.lower_bounds(), enc.upper_bounds(), opts);
  EXPECT_LT(r.best_fitness, 0.01);
}

}  // namespace
