// Tests for the nonlinear transient engine against closed-form responses.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "circuit/ac.hpp"
#include "circuit/transient.hpp"
#include "dsp/spectrum.hpp"

namespace {

using namespace stf::circuit;

TEST(Transient, RcStepResponse) {
  // V -> R -> C: v_c(t) = V (1 - exp(-t/RC)).
  Netlist nl;
  nl.add_vsource("VS", "in", "0", 0.0);
  nl.add_resistor("R1", "in", "out", 1000.0);
  nl.add_capacitor("C1", "out", "0", 1e-6);  // tau = 1 ms
  TransientOptions opts;
  opts.t_stop = 5e-3;
  opts.dt = 10e-6;
  SourceWaveforms wf;
  // Strictly after t=0 so the initial DC point sees the pre-step level.
  wf["VS"] = [](double t) { return t > 0.0 ? 1.0 : 0.0; };
  const auto result = simulate_transient(nl, opts, wf);

  const NodeId out = 2;  // nodes are created in add order: in=1, out=2
  const double tau = 1e-3;
  for (std::size_t i = 10; i < result.steps(); i += 25) {
    const double t = result.time()[i];
    const double expected = 1.0 - std::exp(-t / tau);
    EXPECT_NEAR(result.at(i, out), expected, 5e-3) << "t=" << t;
  }
}

TEST(Transient, RcStartsFromDcOperatingPoint) {
  // With the source already at 1 V at t=0, nothing should move.
  Netlist nl;
  nl.add_vsource("VS", "in", "0", 1.0);
  nl.add_resistor("R1", "in", "out", 1000.0);
  nl.add_capacitor("C1", "out", "0", 1e-6);
  TransientOptions opts;
  opts.t_stop = 1e-3;
  opts.dt = 10e-6;
  const auto result = simulate_transient(nl, opts);
  for (std::size_t i = 0; i < result.steps(); i += 20)
    EXPECT_NEAR(result.at(i, 2), 1.0, 1e-9);
}

TEST(Transient, RlCurrentRise) {
  // V -> R -> L to ground: i(t) = V/R (1 - exp(-t R/L)); node between R
  // and L decays from V to 0.
  Netlist nl;
  nl.add_vsource("VS", "in", "0", 0.0);
  nl.add_resistor("R1", "in", "mid", 100.0);
  nl.add_inductor("L1", "mid", "0", 10e-3);  // tau = L/R = 100 us
  TransientOptions opts;
  opts.t_stop = 500e-6;
  opts.dt = 1e-6;
  SourceWaveforms wf;
  wf["VS"] = [](double t) { return t > 0.0 ? 1.0 : 0.0; };
  const auto result = simulate_transient(nl, opts, wf);
  const double tau = 10e-3 / 100.0;
  for (std::size_t i = 5; i < result.steps(); i += 50) {
    const double t = result.time()[i];
    // v_mid = V * exp(-t/tau) (voltage across the inductor).
    EXPECT_NEAR(result.at(i, 2), std::exp(-t / tau), 5e-3) << "t=" << t;
  }
}

TEST(Transient, LcTankRingsAtResonance) {
  // A parallel LC tank kicked through a large resistor (high Q) rings at
  // f0 = 1/(2 pi sqrt(LC)).
  Netlist nl;
  nl.add_vsource("VS", "in", "0", 0.0);
  nl.add_resistor("R1", "in", "tank", 1e6);  // Q = R sqrt(C/L) = 1000
  nl.add_capacitor("C1", "tank", "0", 1e-9);
  nl.add_inductor("L1", "tank", "0", 1e-3);  // f0 ~ 159 kHz
  TransientOptions opts;
  opts.t_stop = 60e-6;
  opts.dt = 20e-9;
  SourceWaveforms wf;
  wf["VS"] = [](double t) { return t > 0.0 ? 1.0 : 0.0; };  // step kick
  const auto result = simulate_transient(nl, opts, wf);
  const auto v = result.voltage(2);
  const double fs = 1.0 / opts.dt;
  const double f0 = 1.0 / (2.0 * std::numbers::pi * std::sqrt(1e-3 * 1e-9));
  // Energy concentrated near f0 rather than at half or double it.
  const double at_f0 = stf::dsp::tone_amplitude(v, f0, fs);
  EXPECT_GT(at_f0, 5.0 * stf::dsp::tone_amplitude(v, f0 / 2.0, fs));
  EXPECT_GT(at_f0, 5.0 * stf::dsp::tone_amplitude(v, f0 * 2.0, fs));
}

TEST(Transient, SineThroughResistorDivider) {
  // Memoryless circuit: output tracks the instantaneous divider ratio.
  Netlist nl;
  nl.add_vsource("VS", "in", "0", 0.0);
  nl.add_resistor("R1", "in", "out", 3000.0);
  nl.add_resistor("R2", "out", "0", 1000.0);
  TransientOptions opts;
  opts.t_stop = 1e-3;
  opts.dt = 1e-6;
  SourceWaveforms wf;
  wf["VS"] = [](double t) {
    return std::sin(2.0 * std::numbers::pi * 5e3 * t);
  };
  const auto result = simulate_transient(nl, opts, wf);
  for (std::size_t i = 0; i < result.steps(); i += 37) {
    const double t = result.time()[i];
    EXPECT_NEAR(result.at(i, 2),
                0.25 * std::sin(2.0 * std::numbers::pi * 5e3 * t), 1e-6);
  }
}

TEST(Transient, BjtAmplifierSmallSignalGainMatchesAc) {
  // A resistively-biased CE stage driven with a small low-frequency sine:
  // the transient output amplitude must match the AC analysis at the same
  // frequency (both engines linearize around the same operating point).
  Netlist nl;
  BjtParams p;
  p.vaf = 1e12;
  p.ikf = 1e12;
  nl.add_vsource("VCC", "vcc", "0", 3.0);
  nl.add_vsource("VS", "src", "0", 0.0, {1.0, 0.0});
  nl.add_resistor("RS", "src", "nin", 50.0);
  nl.add_capacitor("CC", "nin", "b", 10e-6);
  nl.add_resistor("RB", "vcc", "b", 100e3);
  nl.add_resistor("RC", "vcc", "c", 200.0);
  nl.add_bjt("Q1", "c", "b", "0", p);

  TransientOptions opts;
  opts.t_stop = 2e-3;
  opts.dt = 0.5e-6;
  const double freq = 20e3;
  const double amp = 0.2e-3;  // well within small-signal
  SourceWaveforms wf;
  wf["VS"] = [=](double t) {
    return amp * std::sin(2.0 * std::numbers::pi * freq * t);
  };
  const auto result = simulate_transient(nl, opts, wf);

  const auto dc = solve_dc(nl);
  const AcAnalysis ac(nl, dc);
  const double gain_expected =
      std::abs(ac.solve(freq)[nl.node("c")]);

  // Measure output amplitude in the settled second half.
  const auto vc = result.voltage(nl.node("c"));
  std::vector<double> settled(vc.begin() + vc.size() / 2, vc.end());
  const double vout =
      stf::dsp::tone_amplitude(settled, freq, 1.0 / opts.dt);
  EXPECT_NEAR(vout / amp, gain_expected, 0.05 * gain_expected);
}

TEST(Transient, BjtClipsLargeSignal) {
  // Driving the same stage hard produces visible asymmetric distortion:
  // second-harmonic content emerges (exponential nonlinearity).
  Netlist nl;
  BjtParams p;
  nl.add_vsource("VCC", "vcc", "0", 3.0);
  nl.add_vsource("VS", "src", "0", 0.0);
  nl.add_resistor("RS", "src", "nin", 50.0);
  nl.add_capacitor("CC", "nin", "b", 10e-6);
  nl.add_resistor("RB", "vcc", "b", 100e3);
  nl.add_resistor("RC", "vcc", "c", 200.0);
  nl.add_bjt("Q1", "c", "b", "0", p);

  TransientOptions opts;
  opts.t_stop = 2e-3;
  opts.dt = 0.5e-6;
  const double freq = 20e3;
  SourceWaveforms wf;
  wf["VS"] = [=](double t) {
    return 30e-3 * std::sin(2.0 * std::numbers::pi * freq * t);
  };
  const auto result = simulate_transient(nl, opts, wf);
  const auto vc = result.voltage(nl.node("c"));
  std::vector<double> settled(vc.begin() + vc.size() / 2, vc.end());
  const double fs = 1.0 / opts.dt;
  const double fund = stf::dsp::tone_amplitude(settled, freq, fs);
  const double second = stf::dsp::tone_amplitude(settled, 2.0 * freq, fs);
  EXPECT_GT(second, 0.05 * fund);  // strong HD2 from the exponential
}

TEST(Transient, InvalidArgumentsThrow) {
  Netlist nl;
  nl.add_vsource("VS", "a", "0", 1.0);
  nl.add_resistor("R", "a", "0", 100.0);
  TransientOptions opts;
  opts.dt = 0.0;
  EXPECT_THROW(simulate_transient(nl, opts), std::invalid_argument);
  opts.dt = 1e-6;
  opts.t_stop = 0.5e-6;  // t_stop <= dt
  EXPECT_THROW(simulate_transient(nl, opts), std::invalid_argument);
  opts.t_stop = 1e-3;
  SourceWaveforms wf;
  wf["NOPE"] = [](double) { return 0.0; };
  EXPECT_THROW(simulate_transient(nl, opts, wf), std::invalid_argument);
  SourceWaveforms null_wf;
  null_wf["VS"] = nullptr;
  EXPECT_THROW(simulate_transient(nl, opts, null_wf), std::invalid_argument);
}

TEST(Transient, WaveformValidationErrorIsHashOrderIndependent) {
  // With several invalid entries the reported name must be the
  // lexicographically first one, not whichever the unordered_map's hash
  // seed happens to yield -- diagnostics are part of the reproducibility
  // contract (see tools/stf_analyze.py rule unordered-export).
  Netlist nl;
  nl.add_vsource("VS", "a", "0", 1.0);
  nl.add_resistor("R", "a", "0", 100.0);
  TransientOptions opts;
  opts.dt = 1e-6;
  opts.t_stop = 1e-3;
  SourceWaveforms wf;
  wf["ZZZ_BAD"] = [](double) { return 0.0; };
  wf["AAA_BAD"] = [](double) { return 0.0; };
  wf["MMM_BAD"] = [](double) { return 0.0; };
  try {
    simulate_transient(nl, opts, wf);
    FAIL() << "unknown waveform names must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("AAA_BAD"), std::string::npos)
        << "expected the lexicographically first bad name, got: " << e.what();
  }
}

TEST(Transient, TrapezoidalRuleBarelyDampsHighQTank) {
  // A parallel LC tank kicked through a 1 MOhm source resistor has
  // Q = R*sqrt(C/L) = 1000: over 16 ring cycles the physical amplitude
  // decay is ~5%. Trapezoidal integration is non-dissipative, so the
  // simulated decay must stay close to that physical value (backward Euler
  // would eat the oscillation numerically).
  Netlist nl;
  nl.add_vsource("VS", "in", "0", 0.0);
  nl.add_resistor("R1", "in", "tank", 1e6);
  nl.add_capacitor("C1", "tank", "0", 1e-9);
  nl.add_inductor("L1", "tank", "0", 1e-3);  // f0 ~ 159 kHz
  TransientOptions opts;
  opts.t_stop = 100e-6;
  opts.dt = 50e-9;
  SourceWaveforms wf;
  wf["VS"] = [](double t) { return t > 0.0 ? 1.0 : 0.0; };  // step kick
  const auto result = simulate_transient(nl, opts, wf);
  const auto v = result.voltage(2);

  // Peak amplitude in the first vs last quarter of the run (ignore the
  // tiny steady-state offset, which is < 1e-4 of the ring).
  auto peak = [&](std::size_t begin, std::size_t end) {
    double m = 0.0;
    for (std::size_t i = begin; i < end; ++i) m = std::max(m, std::abs(v[i]));
    return m;
  };
  const std::size_t n = v.size();
  const double first = peak(0, n / 4);
  const double last = peak(3 * n / 4, n);
  EXPECT_GT(first, 0.0);
  EXPECT_GT(last / first, 0.9);
}

}  // namespace
