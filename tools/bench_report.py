#!/usr/bin/env python3
"""Run the perf microbenchmarks and emit a BENCH_*.json report.

Wraps google-benchmark's --benchmark_out plumbing so every run lands in a
uniform artifact (bench/reports/BENCH_<label>.json by default), prints a
compact summary with the derived ratios the repo tracks (FFT plan-cache
speedup, optimize_stimulus thread scaling), and can diff against a committed
baseline:

    python3 tools/bench_report.py --build build                 # run + report
    python3 tools/bench_report.py --build build --label ci      # custom name
    python3 tools/bench_report.py --build build \
        --compare bench/reports/BENCH_baseline.json             # regression diff
    python3 tools/bench_report.py --summarize BENCH_foo.json    # no re-run

Exit status is non-zero if the benchmark binary fails, or if --compare finds
a regression beyond --tolerance (default 1.25x).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path


def run_benchmarks(build_dir: Path, out_path: Path, min_time: float,
                   bench_filter: str | None) -> None:
    binary = build_dir / "bench" / "perf_microbench"
    if not binary.exists():
        sys.exit(f"bench_report: {binary} not found (build the repo first)")
    out_path.parent.mkdir(parents=True, exist_ok=True)
    cmd = [
        str(binary),
        f"--benchmark_out={out_path}",
        "--benchmark_out_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    print(f"bench_report: running {' '.join(cmd)}", flush=True)
    subprocess.run(cmd, check=True)


# Keys google-benchmark itself writes into each entry; everything else is a
# user counter (the telemetry deltas perf_microbench publishes).
_STANDARD_KEYS = {
    "name", "family_index", "per_family_instance_index", "run_name",
    "run_type", "repetitions", "repetition_index", "threads", "iterations",
    "real_time", "cpu_time", "time_unit", "aggregate_name", "aggregate_unit",
    "label", "error_occurred", "error_message",
}


def load_times(path: Path) -> dict[str, float]:
    """Benchmark name -> real time in nanoseconds."""
    doc = json.loads(path.read_text())
    times: dict[str, float] = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(
            b.get("time_unit", "ns"), 1.0)
        times[b["name"]] = float(b["real_time"]) * scale
    return times


def load_counters(path: Path) -> dict[str, dict[str, float]]:
    """Benchmark name -> {counter name -> per-iteration value}."""
    doc = json.loads(path.read_text())
    counters: dict[str, dict[str, float]] = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        extra = {k: float(v) for k, v in b.items()
                 if k not in _STANDARD_KEYS and isinstance(v, (int, float))}
        if extra:
            counters[b["name"]] = extra
    return counters


def fmt_ns(ns: float) -> str:
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= div:
            return f"{ns / div:.3g} {unit}"
    return f"{ns:.3g} ns"


def ratio_line(times: dict[str, float], label: str, slow: str,
               fast: str) -> str | None:
    if slow in times and fast in times and times[fast] > 0:
        return f"  {label}: {times[slow] / times[fast]:.2f}x"
    return None


def summarize(path: Path) -> None:
    times = load_times(path)
    if not times:
        sys.exit(f"bench_report: no benchmarks in {path}")
    counters = load_counters(path)
    width = max(len(n) for n in times)
    print(f"\nbench_report: {path} ({len(times)} benchmarks)")
    for name, ns in times.items():
        line = f"  {name:<{width}}  {fmt_ns(ns)}"
        if name in counters:
            pairs = ", ".join(f"{k}={v:.3g}/iter"
                              for k, v in sorted(counters[name].items()))
            line += f"  [{pairs}]"
        print(line)

    telemetry_lines = []
    hits = counters.get("BM_SignatureAcquisition", {})
    hit = hits.get("fft.plan_cache_hit", 0.0)
    miss = hits.get("fft.plan_cache_miss", 0.0)
    if hit + miss > 0:
        telemetry_lines.append(
            f"  signature-acquisition fft plan-cache hit rate: "
            f"{hit / (hit + miss):.4f}")
    for bench in ("BM_GuardedTestDevice", "BM_GuardedTestDeviceFaulted"):
        guard = counters.get(bench, {})
        if any(k.startswith("guard.") for k in guard):
            chain = "clean chain" if bench == "BM_GuardedTestDevice" \
                else "faulted chain"
            telemetry_lines.append(
                f"  {bench} ({chain}): "
                f"retries={guard.get('guard.retries', 0.0):.3g}/part, "
                f"escalations={guard.get('guard.escalations', 0.0):.3g}/part, "
                f"routed={guard.get('guard.routed', 0.0):.3g}/part")
    if telemetry_lines:
        print("telemetry counters:")
        for line in telemetry_lines:
            print(line)

    print("derived ratios:")
    derived = [
        ratio_line(times, "fft plan cache, n=1024 (uncached/cached)",
                   "BM_Fft1024Uncached", "BM_Fft1024"),
        ratio_line(times, "fft plan cache, n=1000 Bluestein (uncached/cached)",
                   "BM_FftBluestein1000Uncached", "BM_FftBluestein1000"),
        ratio_line(times, "optimize_stimulus 8-thread speedup (1T/8T)",
                   "BM_OptimizeStimulusThreads/1/real_time",
                   "BM_OptimizeStimulusThreads/8/real_time"),
        ratio_line(times, "optimize_stimulus 4-thread speedup (1T/4T)",
                   "BM_OptimizeStimulusThreads/1/real_time",
                   "BM_OptimizeStimulusThreads/4/real_time"),
        ratio_line(times, "guarded test, faulted-chain cost (faulted/clean)",
                   "BM_GuardedTestDeviceFaulted", "BM_GuardedTestDevice"),
        ratio_line(times, "batched lot speedup, clean (serial/batched)",
                   "LotSerialGuarded", "LotBatched"),
        ratio_line(times, "batched lot speedup, faulted (serial/batched)",
                   "LotSerialGuardedFaulted", "LotBatchedFaulted"),
    ]
    printed = False
    for line in derived:
        if line:
            print(line)
            printed = True
    if not printed:
        print("  (none: benchmarks filtered out)")


def throughput_ratios(current: Path, baseline: Path) -> None:
    """Devices/sec ratio lines (current vs baseline) for every benchmark
    that publishes a devices_per_second counter in both reports -- the
    tab_throughput lot figures the SIMD work is gated on."""
    cur_c, base_c = load_counters(current), load_counters(baseline)
    lines = []
    for name in sorted(cur_c):
        cur_dps = cur_c[name].get("devices_per_second")
        base_dps = base_c.get(name, {}).get("devices_per_second")
        if cur_dps and base_dps and base_dps > 0:
            lines.append(f"  {name} devices/sec: {base_dps:.0f} -> "
                         f"{cur_dps:.0f} ({cur_dps / base_dps:.2f}x)")
    if lines:
        print("throughput vs baseline:")
        for line in lines:
            print(line)


def compare(current: Path, baseline: Path, tolerance: float) -> int:
    cur, base = load_times(current), load_times(baseline)
    if not cur:
        print("bench_report: no benchmarks in current report")
        return 0
    throughput_ratios(current, baseline)
    regressions = 0
    names = sorted(cur)
    width = max(len(n) for n in names)
    print(f"\ncomparison vs {baseline} (tolerance {tolerance:.2f}x):")
    for name in names:
        base_ns = base.get(name)
        # A benchmark the baseline lacks (new bench) or records as zero
        # (clock too coarse, or a corrupted report) has no meaningful ratio:
        # report it as n/a rather than flagging a phantom regression or
        # dividing by zero.
        if base_ns is None:
            print(f"  {name:<{width}}  n/a -> {fmt_ns(cur[name])}"
                  f"  (no baseline entry)")
            continue
        if base_ns <= 0:
            print(f"  {name:<{width}}  n/a -> {fmt_ns(cur[name])}"
                  f"  (zero/invalid baseline time)")
            continue
        r = cur[name] / base_ns
        flag = ""
        if r > tolerance:
            flag = "  << REGRESSION"
            regressions += 1
        elif r < 1.0 / tolerance:
            flag = "  (faster)"
        print(f"  {name:<{width}}  {fmt_ns(base_ns)} -> {fmt_ns(cur[name])}"
              f"  ({r:.2f}x){flag}")
    if regressions:
        print(f"bench_report: {regressions} regression(s)")
    return 1 if regressions else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build", type=Path, default=Path("build"),
                    help="CMake build directory (default: build)")
    ap.add_argument("--label", default="latest",
                    help="report name suffix: BENCH_<label>.json")
    ap.add_argument("--out-dir", type=Path, default=Path("bench/reports"),
                    help="directory for report JSON files")
    ap.add_argument("--min-time", type=float, default=0.1,
                    help="google-benchmark min time per benchmark (s)")
    ap.add_argument("--filter", dest="bench_filter", default=None,
                    help="--benchmark_filter regex passed through")
    ap.add_argument("--compare", type=Path, default=None,
                    help="baseline BENCH_*.json to diff against")
    ap.add_argument("--tolerance", type=float, default=1.25,
                    help="slowdown ratio that counts as a regression")
    ap.add_argument("--summarize", type=Path, default=None,
                    help="summarize an existing report instead of running")
    args = ap.parse_args()

    if args.summarize is not None:
        summarize(args.summarize)
        if args.compare is not None:
            return compare(args.summarize, args.compare, args.tolerance)
        return 0

    out_path = args.out_dir / f"BENCH_{args.label}.json"
    run_benchmarks(args.build, out_path, args.min_time, args.bench_filter)
    summarize(out_path)
    if args.compare is not None:
        return compare(out_path, args.compare, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
