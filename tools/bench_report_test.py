#!/usr/bin/env python3
"""Regression tests for tools/bench_report.py.

Plain-assert tests (no pytest dependency) run by ctest: the compare() path
must report missing or zero baseline entries as n/a instead of dividing by
zero or flagging phantom regressions, and must still catch real slowdowns.
"""

from __future__ import annotations

import contextlib
import io
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_report  # noqa: E402


def write_report(directory: Path, name: str,
                 entries: list[tuple[str, float]]) -> Path:
    path = directory / name
    path.write_text(json.dumps({
        "benchmarks": [
            {"name": bench, "run_type": "iteration", "iterations": 1,
             "real_time": ns, "cpu_time": ns, "time_unit": "ns"}
            for bench, ns in entries
        ],
    }))
    return path


def run_compare(current: Path, baseline: Path,
                tolerance: float = 1.25) -> tuple[int, str]:
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        rc = bench_report.compare(current, baseline, tolerance)
    return rc, out.getvalue()


def test_missing_baseline_entry_is_na_not_regression(tmp: Path) -> None:
    cur = write_report(tmp, "cur1.json",
                       [("BM_Old", 100.0), ("BM_New", 50.0)])
    base = write_report(tmp, "base1.json", [("BM_Old", 100.0)])
    rc, out = run_compare(cur, base)
    assert rc == 0, out
    assert "BM_New" in out, out
    assert "n/a" in out, out
    assert "no baseline entry" in out, out
    assert "REGRESSION" not in out, out


def test_zero_baseline_time_is_na_not_regression(tmp: Path) -> None:
    # A zeroed baseline used to produce ratio inf and a phantom regression.
    cur = write_report(tmp, "cur2.json", [("BM_Zeroed", 100.0)])
    base = write_report(tmp, "base2.json", [("BM_Zeroed", 0.0)])
    rc, out = run_compare(cur, base)
    assert rc == 0, out
    assert "n/a" in out, out
    assert "zero/invalid baseline" in out, out
    assert "REGRESSION" not in out, out


def test_real_regression_still_fails(tmp: Path) -> None:
    cur = write_report(tmp, "cur3.json",
                       [("BM_Slow", 200.0), ("BM_Same", 100.0)])
    base = write_report(tmp, "base3.json",
                        [("BM_Slow", 100.0), ("BM_Same", 100.0)])
    rc, out = run_compare(cur, base)
    assert rc == 1, out
    assert out.count("REGRESSION") == 1, out


def test_speedup_is_flagged_but_passes(tmp: Path) -> None:
    cur = write_report(tmp, "cur4.json", [("BM_Fast", 50.0)])
    base = write_report(tmp, "base4.json", [("BM_Fast", 100.0)])
    rc, out = run_compare(cur, base)
    assert rc == 0, out
    assert "(faster)" in out, out


def test_empty_current_report_is_benign(tmp: Path) -> None:
    cur = write_report(tmp, "cur5.json", [])
    base = write_report(tmp, "base5.json", [("BM_X", 1.0)])
    rc, out = run_compare(cur, base)
    assert rc == 0, out


def test_aggregates_and_time_units_are_normalized(tmp: Path) -> None:
    path = tmp / "units.json"
    path.write_text(json.dumps({
        "benchmarks": [
            {"name": "BM_Us", "run_type": "iteration", "real_time": 2.0,
             "cpu_time": 2.0, "time_unit": "us"},
            {"name": "BM_Us_mean", "run_type": "aggregate", "real_time": 2.0,
             "cpu_time": 2.0, "time_unit": "us"},
        ],
    }))
    times = bench_report.load_times(path)
    assert set(times) == {"BM_Us"}, times
    assert times["BM_Us"] == 2000.0, times


def test_throughput_ratio_lines_appear_in_summary(tmp: Path) -> None:
    # The names tab_throughput emits must feed the derived-ratio block.
    report = write_report(tmp, "tp.json", [
        ("LotSerialGuarded", 200.0), ("LotBatched", 100.0),
        ("LotSerialGuardedFaulted", 400.0), ("LotBatchedFaulted", 100.0),
    ])
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        bench_report.summarize(report)
    text = out.getvalue()
    assert "batched lot speedup, clean (serial/batched): 2.00x" in text, text
    assert "batched lot speedup, faulted (serial/batched): 4.00x" in text, text


def main() -> int:
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failures = 0
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        for name, fn in tests:
            try:
                fn(tmp)
                print(f"PASS {name}")
            except AssertionError as exc:
                failures += 1
                print(f"FAIL {name}: {exc}")
    if failures:
        print(f"bench_report_test: {failures} failure(s)")
        return 1
    print(f"bench_report_test: {len(tests)} tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
