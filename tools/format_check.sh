#!/usr/bin/env sh
# Verify that all C++ sources match .clang-format. Exits non-zero listing the
# offending files; exits 0 with a notice when clang-format is unavailable so
# minimal containers can still run the suite.
#
#   tools/format_check.sh          # check
#   tools/format_check.sh --fix    # reformat in place
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$root"

fmt=
for candidate in clang-format clang-format-18 clang-format-17 \
                 clang-format-16 clang-format-15; do
  if command -v "$candidate" >/dev/null 2>&1; then
    fmt=$candidate
    break
  fi
done
if [ -z "$fmt" ]; then
  echo "format_check: clang-format not found; skipping (install it to check)"
  exit 0
fi

files=$(find src tests bench examples tools \
          \( -name '*.cpp' -o -name '*.hpp' \) -print | sort)

if [ "${1:-}" = "--fix" ]; then
  # shellcheck disable=SC2086
  $fmt -i $files
  echo "format_check: reformatted $(echo "$files" | wc -l) files"
  exit 0
fi

bad=0
for f in $files; do
  if ! $fmt --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "format_check: needs formatting: $f"
    bad=1
  fi
done
if [ "$bad" -ne 0 ]; then
  echo "format_check: run tools/format_check.sh --fix"
  exit 1
fi
echo "format_check: OK ($(echo "$files" | wc -l) files)"
