// sigtest_cli: command-line driver for the signature-test framework.
//
// Subcommands:
//   sim-study  [--seed N] [--train N] [--val N]   Section 4.1 reproduction
//   hw-study   [--seed N]                         Section 4.2 reproduction
//   characterize [--temp KELVIN]                  nominal LNA datasheet
//   netlist-op  FILE                              DC operating point
//   netlist-ac  FILE FREQ_HZ [OUT_NODE]           AC node voltages
//   analog                                        baseband lineage demo
//   store-inspect DIR [--scenario S ...]          calibration store browser
//   store-evict   DIR --scenario S [--keep-from N]  prune old versions
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "ate/flow.hpp"
#include "circuit/ac.hpp"
#include "circuit/dc.hpp"
#include "circuit/lna900.hpp"
#include "circuit/parser.hpp"
#include "circuit/sparams.hpp"
#include "common.hpp"
#include "core/telemetry.hpp"
#include "rf/faults.hpp"
#include "sigtest/analog.hpp"
#include "sigtest/batch.hpp"
#include "sigtest/guard.hpp"
#include "stats/rng.hpp"
#include "store/calibration_store.hpp"

namespace {

using namespace stf;

int usage() {
  std::fprintf(
      stderr,
      "usage: sigtest_cli <command> [options]\n"
      "  sim-study  [--seed N] [--train N] [--val N]   paper Sec. 4.1 flow\n"
      "             [--fault SPEC] [--guard]           fault-injected lot\n"
      "  hw-study   [--seed N]                         paper Sec. 4.2 flow\n"
      "  characterize [--temp KELVIN]                  nominal LNA specs\n"
      "  netlist-op  FILE                              DC operating point\n"
      "  netlist-ac  FILE FREQ_HZ                      AC node voltages\n"
      "  analog                                        baseband lineage\n"
      "  store-inspect DIR [--scenario S] [--device-type T] [--temp C]\n"
      "                     list a calibration store's keys and versions;\n"
      "                     with --scenario, load and describe each version\n"
      "  store-evict DIR --scenario S [--device-type T] [--temp C]\n"
      "              [--keep-from N]\n"
      "                     delete persisted versions older than N\n"
      "                     (default: keep only the newest version)\n"
      "global options (any command):\n"
      "  --trace-out FILE   write a Chrome trace_event JSON of the run\n"
      "                     (load in chrome://tracing or ui.perfetto.dev)\n"
      "  --stats            print the telemetry summary table on exit\n"
      "fault injection (sim-study):\n"
      "  --fault SPEC       corrupt production captures; SPEC is a comma-\n"
      "                     separated list of name:p1[:p2] terms with names\n"
      "                     lo, clip, stuck, drop, contact, wander, gain,\n"
      "                     e.g. --fault clip:0.1,contact:0.02:0.05\n"
      "  --guard            test the lot with the guarded runtime (capture\n"
      "                     validation, retry/escalation, outlier routing)\n"
      "                     instead of trusting every prediction\n"
      "  --batch N          with --guard: stream the lot through the batched\n"
      "                     test-cell pipeline (acquire/screen/predict, N\n"
      "                     devices per batch) and report devices/sec\n");
  return 2;
}

// Telemetry flags, filtered out of the argument list before command
// dispatch. Either flag turns collection on for the whole run.
struct TelemetryFlags {
  std::string trace_path;
  bool stats = false;
  bool any() const { return stats || !trace_path.empty(); }
};

TelemetryFlags extract_telemetry_flags(std::vector<std::string>& args) {
  TelemetryFlags flags;
  std::vector<std::string> kept;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--stats") {
      flags.stats = true;
    } else if (a.rfind("--trace-out=", 0) == 0) {
      flags.trace_path = a.substr(std::strlen("--trace-out="));
    } else if (a == "--trace-out" && i + 1 < args.size()) {
      flags.trace_path = args[++i];
    } else {
      kept.push_back(a);
    }
  }
  args = std::move(kept);
  return flags;
}

int write_telemetry_outputs(const TelemetryFlags& flags) {
  if (!flags.trace_path.empty()) {
    std::ofstream out(flags.trace_path);
    if (!out) {
      std::fprintf(stderr, "sigtest_cli: cannot write %s\n",
                   flags.trace_path.c_str());
      return 1;
    }
    out << stf::core::telemetry::chrome_trace();
    std::fprintf(stderr, "sigtest_cli: trace written to %s\n",
                 flags.trace_path.c_str());
  }
  if (flags.stats)
    std::fputs(stf::core::telemetry::summary().c_str(), stderr);
  return 0;
}

// --key value option lookup; returns fallback when absent.
double opt_num(const std::vector<std::string>& args, const std::string& key,
               double fallback) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i)
    if (args[i] == key) return std::stod(args[i + 1]);
  return fallback;
}

// --key value string option lookup; returns fallback when absent.
std::string opt_str(const std::vector<std::string>& args,
                    const std::string& key, const std::string& fallback) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i)
    if (args[i] == key) return args[i + 1];
  return fallback;
}

bool has_flag(const std::vector<std::string>& args, const std::string& key) {
  for (const auto& a : args)
    if (a == key) return true;
  return false;
}

// Production-lot pass under an optional fault scenario: every device of a
// 200-part lot is tested against datasheet limits, unguarded (trust every
// prediction) or guarded (validate / retry / escalate / route).
int run_faulted_lot(const bench::SimStudyResult& study,
                    const rf::FaultInjector& faults, bool guard, int batch) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const auto cfg = sigtest::SignatureTestConfig::simulation_study();
  const auto cal = rf::make_lna_population(100, 0.2, 42);
  const auto lot = rf::make_lna_population(200, 0.2, 77);
  const std::vector<ate::SpecLimit> limits = {
      {"gain_db", 14.2, 15.6},
      {"nf_db", -kInf, 3.2},
      {"iip3_dbm", -14.3, kInf},
  };

  std::printf("\nproduction lot: 200 devices, fault scenario %s, %s\n",
              faults.empty() ? "none" : faults.describe().c_str(),
              guard ? "guarded runtime" : "unguarded runtime");

  std::vector<std::vector<double>> truth;
  for (const auto& dev : lot) truth.push_back(dev.specs.to_vector());

  ate::FlowResult flow;
  if (guard && batch > 0) {
    // Batched test-cell pipeline: same guard semantics, lot streamed through
    // acquire -> screen -> predict with one regression GEMV per batch.
    sigtest::GuardPolicy policy;
    policy.outlier_threshold = 2.5;
    sigtest::BatchOptions bopts;
    bopts.batch_size = static_cast<std::size_t>(batch);
    sigtest::BatchRuntime runtime(cfg, study.stimulus,
                                  circuit::LnaSpecs::names(), policy, bopts);
    stats::Rng cal_rng(7);
    runtime.calibrate(cal, cal_rng);
    const stats::Rng lot_rng(9001);
    const auto t0 = std::chrono::steady_clock::now();
    const sigtest::LotResult result =
        runtime.test_lot(lot, lot_rng, faults.empty() ? nullptr : &faults);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    int retries = 0;
    for (const auto& d : result.dispositions) retries += d.attempts - 1;
    flow = ate::run_production_flow(truth, result.dispositions, limits, 0.25);
    std::printf("  batched pipeline: batch size %d, %.0f devices/sec\n", batch,
                sec > 0.0 ? static_cast<double>(result.devices()) / sec : 0.0);
    std::printf("  guard activity: %d retries, %zu routed to conventional,"
                " %d retested\n",
                retries, result.routed, flow.retested);
  } else if (guard) {
    sigtest::GuardPolicy policy;
    policy.outlier_threshold = 2.5;
    sigtest::GuardedRuntime runtime(cfg, study.stimulus,
                                    circuit::LnaSpecs::names(), policy);
    stats::Rng cal_rng(7);
    runtime.calibrate(cal, cal_rng);
    stats::Rng rng(9001);
    std::vector<std::vector<double>> predicted;
    std::vector<ate::Disposition> dispositions;
    int retries = 0, routed = 0;
    for (std::size_t i = 0; i < lot.size(); ++i) {
      const auto d = runtime.test_device(
          *lot[i].dut, rng, faults.empty() ? nullptr : &faults, i);
      retries += d.attempts - 1;
      switch (d.kind) {
        case sigtest::DispositionKind::kPredicted:
          dispositions.push_back(ate::Disposition::kPredicted);
          break;
        case sigtest::DispositionKind::kPredictedAfterRetry:
          dispositions.push_back(ate::Disposition::kRetested);
          break;
        case sigtest::DispositionKind::kRoutedToConventional:
          dispositions.push_back(ate::Disposition::kRoutedToConventional);
          ++routed;
          break;
      }
      predicted.push_back(d.predicted);
    }
    flow = ate::run_production_flow(truth, predicted, dispositions, limits,
                                    0.25);
    std::printf("  guard activity: %d retries, %d routed to conventional,"
                " %d retested\n",
                retries, routed, flow.retested);
  } else {
    sigtest::FastestRuntime runtime(cfg, study.stimulus,
                                    circuit::LnaSpecs::names());
    stats::Rng cal_rng(7);
    runtime.calibrate(cal, cal_rng);
    stats::Rng rng(9001);
    std::vector<std::vector<double>> predicted;
    for (std::size_t i = 0; i < lot.size(); ++i)
      predicted.push_back(
          faults.empty()
              ? runtime.test_device(*lot[i].dut, rng)
              : runtime.test_device(*lot[i].dut, rng, faults, i));
    flow = ate::run_production_flow(truth, predicted, limits, 0.25);
  }
  std::printf("  pass %d, fail %d, escapes %d, yield loss %d"
              " (escape rate %.4f, yield-loss rate %.4f)\n",
              flow.true_pass, flow.true_fail, flow.test_escape,
              flow.yield_loss, flow.escape_rate(), flow.yield_loss_rate());
  return 0;
}

int cmd_sim_study(const std::vector<std::string>& args) {
  bench::SimStudyOptions opts;
  opts.population_seed =
      static_cast<std::uint64_t>(opt_num(args, "--seed", 42));
  opts.n_train = static_cast<std::size_t>(opt_num(args, "--train", 100));
  opts.n_val = static_cast<std::size_t>(opt_num(args, "--val", 25));
  const std::string fault_spec = opt_str(args, "--fault", "");
  const bool guard = has_flag(args, "--guard");
  const int batch = static_cast<int>(opt_num(args, "--batch", 0));
  const auto result = bench::run_simulation_study(opts);
  std::printf("simulation study: %zu train / %zu validate, GA objective"
              " %.4e\n",
              opts.n_train, opts.n_val, result.ga_objective);
  for (const auto& spec : result.report.specs)
    bench::print_error_summary(spec, "");
  if (!fault_spec.empty() || guard) {
    const auto faults = fault_spec.empty()
                            ? rf::FaultInjector{}
                            : rf::FaultInjector::parse(fault_spec);
    return run_faulted_lot(result, faults, guard, batch);
  }
  return 0;
}

int cmd_hw_study(const std::vector<std::string>& args) {
  bench::HwStudyOptions opts;
  opts.population_seed =
      static_cast<std::uint64_t>(opt_num(args, "--seed", 17));
  const auto result = bench::run_hardware_study(opts);
  std::printf("hardware study: 55 devices (28 cal / 27 val)\n");
  for (const auto& spec : result.report.specs)
    bench::print_error_summary(spec, "");
  return 0;
}

int cmd_characterize(const std::vector<std::string>& args) {
  const double kelvin = opt_num(args, "--temp", 290.0);
  auto nl = circuit::Lna900::build(circuit::Lna900::nominal());
  nl.set_temperature(kelvin);
  const auto dc = circuit::solve_dc(nl);
  const circuit::AcAnalysis ac(nl, dc);
  const auto port = circuit::Lna900::port();
  circuit::TwoPortSetup tp;
  tp.input_node = "nin";
  tp.output_node = "out";
  const auto s = circuit::s_parameters(ac, circuit::Lna900::kF0, tp);
  std::printf("900 MHz LNA at %.0f K:\n", kelvin);
  std::printf("  Ic    %8.3f mA\n", dc.bjt_op[0].ic * 1e3);
  std::printf("  gain  %8.2f dB\n",
              circuit::transducer_gain_db(ac, circuit::Lna900::kF0, port));
  std::printf("  NF    %8.2f dB\n",
              circuit::noise_figure_db(ac, circuit::Lna900::kF0, port));
  std::printf("  IIP3  %8.2f dBm\n",
              circuit::iip3_dbm(ac, circuit::Lna900::kF0,
                                circuit::Lna900::kF2, port));
  std::printf("  S11   %8.2f dB\n", s.s11_db());
  return 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int cmd_netlist_op(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto nl = circuit::parse_netlist(read_file(args[0]));
  const auto dc = circuit::solve_dc(nl);
  std::printf("DC operating point (%d Newton iterations):\n", dc.iterations);
  for (std::size_t n = 1; n <= nl.node_count(); ++n)
    std::printf("  V(%s) = %.6g V\n",
                nl.node_name(static_cast<circuit::NodeId>(n)).c_str(),
                dc.v[n]);
  for (std::size_t q = 0; q < nl.bjts().size(); ++q)
    std::printf("  %s: Ic = %.4g A, Ib = %.4g A, gm = %.4g S\n",
                nl.bjts()[q].name.c_str(), dc.bjt_op[q].ic, dc.bjt_op[q].ib,
                dc.bjt_op[q].gm);
  return 0;
}

int cmd_netlist_ac(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const auto nl = circuit::parse_netlist(read_file(args[0]));
  const double freq = circuit::parse_spice_number(args[1]);
  const auto dc = circuit::solve_dc(nl);
  const circuit::AcAnalysis ac(nl, dc);
  const auto v = ac.solve(freq);
  std::printf("AC node voltages at %g Hz (magnitude / phase deg):\n", freq);
  for (std::size_t n = 1; n <= nl.node_count(); ++n)
    std::printf("  V(%s) = %.6g / %.2f\n",
                nl.node_name(static_cast<circuit::NodeId>(n)).c_str(),
                std::abs(v[n]), std::arg(v[n]) * 180.0 / M_PI);
  return 0;
}

int cmd_analog(const std::vector<std::string>&) {
  const auto pop = sigtest::make_filter_population(60, 0.2, 3);
  std::vector<sigtest::AnalogDeviceRecord> train(pop.begin(),
                                                 pop.begin() + 45);
  std::vector<sigtest::AnalogDeviceRecord> val(pop.begin() + 45, pop.end());
  sigtest::AnalogSignatureConfig cfg;
  const auto stim = dsp::PwlWaveform::uniform(
      cfg.capture_s,
      {0.0, 0.8, -0.6, 0.4, -0.9, 0.7, -0.2, 0.9, -0.7, 0.3, -0.4, 0.6, 0.0});
  sigtest::AnalogSignatureRuntime runtime(cfg, stim);
  stats::Rng rng(7);
  runtime.calibrate(train, rng);
  const auto rep = runtime.validate(val, rng);
  std::printf("baseband lineage (Sallen-Key filter, transient signature):\n");
  for (std::size_t s = 0; s < rep.names.size(); ++s)
    std::printf("  %-12s rms %.4g, R^2 %.4f\n", rep.names[s].c_str(),
                rep.rms_error[s], rep.r_squared[s]);
  return 0;
}

/// Shared flag grammar of the store subcommands: DIR first, then the key
/// fields. Returns false (after printing usage) on malformed input.
bool parse_store_args(const std::vector<std::string>& args, std::string* root,
                      stf::store::StoreKey* key, bool* key_given,
                      std::uint64_t* keep_from) {
  if (args.empty()) return false;
  *root = args[0];
  *key_given = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--scenario" && i + 1 < args.size()) {
      key->scenario = args[++i];
      *key_given = true;
    } else if (a == "--device-type" && i + 1 < args.size()) {
      key->device_type = args[++i];
    } else if (a == "--temp" && i + 1 < args.size()) {
      key->temp_bin_c = std::atoi(args[++i].c_str());
    } else if (keep_from != nullptr && a == "--keep-from" &&
               i + 1 < args.size()) {
      *keep_from = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else {
      return false;
    }
  }
  return true;
}

int cmd_store_inspect(const std::vector<std::string>& args) {
  std::string root;
  stf::store::StoreKey key;
  bool key_given = false;
  if (!parse_store_args(args, &root, &key, &key_given, nullptr))
    return usage();
  stf::store::CalibrationStore cal_store(root);

  if (!key_given) {
    const auto keys = cal_store.keys();
    std::printf("%zu key(s) under %s\n", keys.size(), root.c_str());
    for (const auto& k : keys) {
      const auto versions = cal_store.versions(k);
      std::printf("  %-48s versions 1..%llu (%zu on disk)\n",
                  k.canonical().c_str(),
                  static_cast<unsigned long long>(cal_store.latest_version(k)),
                  versions.size());
    }
    return 0;
  }

  const auto versions = cal_store.versions(key);
  if (versions.empty()) {
    std::fprintf(stderr, "store-inspect: no versions for %s\n",
                 key.canonical().c_str());
    return 1;
  }
  std::printf("%s: %zu version(s)\n", key.canonical().c_str(),
              versions.size());
  for (const std::uint64_t v : versions) {
    const auto stored = cal_store.get(key, v);
    std::printf("  v%-4llu signature %zu bins -> %zu specs, screen %s\n",
                static_cast<unsigned long long>(v),
                stored.model->signature_length(), stored.model->n_specs(),
                stored.screen != nullptr ? "yes" : "no");
  }
  return 0;
}

int cmd_store_evict(const std::vector<std::string>& args) {
  std::string root;
  stf::store::StoreKey key;
  bool key_given = false;
  std::uint64_t keep_from = 0;
  if (!parse_store_args(args, &root, &key, &key_given, &keep_from) ||
      !key_given)
    return usage();
  stf::store::CalibrationStore cal_store(root);
  const std::uint64_t latest = cal_store.latest_version(key);
  if (latest == 0) {
    std::fprintf(stderr, "store-evict: no versions for %s\n",
                 key.canonical().c_str());
    return 1;
  }
  if (keep_from == 0) keep_from = latest;  // default: keep only the newest
  const std::size_t removed = cal_store.prune(key, keep_from);
  std::printf("%s: removed %zu version(s), kept %llu..%llu\n",
              key.canonical().c_str(), removed,
              static_cast<unsigned long long>(keep_from),
              static_cast<unsigned long long>(latest));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  const TelemetryFlags telem = extract_telemetry_flags(args);
  if (telem.any()) {
    if (!stf::core::telemetry::compiled())
      std::fprintf(stderr,
                   "sigtest_cli: built with SIGTEST_TELEMETRY=OFF; trace and "
                   "stats output will be empty\n");
    stf::core::telemetry::set_enabled(true);
  }

  int rc = 0;
  try {
    if (cmd == "sim-study") rc = cmd_sim_study(args);
    else if (cmd == "hw-study") rc = cmd_hw_study(args);
    else if (cmd == "characterize") rc = cmd_characterize(args);
    else if (cmd == "netlist-op") rc = cmd_netlist_op(args);
    else if (cmd == "netlist-ac") rc = cmd_netlist_ac(args);
    else if (cmd == "analog") rc = cmd_analog(args);
    else if (cmd == "store-inspect") rc = cmd_store_inspect(args);
    else if (cmd == "store-evict") rc = cmd_store_evict(args);
    else return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sigtest_cli: %s\n", e.what());
    rc = 1;
  }
  if (telem.any() && rc == 0) rc = write_telemetry_outputs(telem);
  return rc;
}
