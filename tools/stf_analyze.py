#!/usr/bin/env python3
"""Static analyzer for the signature-test framework: project conventions
plus the determinism/reproducibility contract.

Runs as a CTest test (the stf_lint entry in the top-level CMakeLists) and
standalone:

    python3 tools/stf_analyze.py [repo-root] [options]

Options:
    --json [PATH]       write findings as JSON to PATH (default: stdout)
    --baseline PATH     baseline file (default: tools/stf_analyze_baseline.json)
    --write-baseline    rewrite the baseline from the current findings
    --list-rules        print the rule registry and exit

The analyzer is tokenizer-aware: every rule matches against code with
comments and string/char literals blanked out, so a banned identifier inside
a comment, a doc string or an error message never fires. (The predecessor,
tools/stf_lint.py, stripped only '//' comments and could be fooled by block
comments and literals; it now forwards here.)

Rule registry (see DESIGN.md "Static analysis contract" for how to add one):

  Conventions (carried over from stf_lint):
    header-doc        public headers open with a file-level // doc comment
    pragma-once       headers start with #pragma once
    include-order     a .cpp includes its own header first
    no-rand           no rand()/srand() (use stf::stats::Rng) and no
                      printf-family (use iostreams) in src/
    checked-access    .front()/.back() only near an emptiness guard
    test-coverage     every src/<mod>/<name>.cpp is referenced from tests/
    raw-thread        no std::thread/std::async/pthread_create outside
                      src/core/ (the pool owns every worker thread) and
                      src/service/ (whose I/O threads move bytes but never
                      compute dispositions)
    no-empty-catch    no empty `catch (...) {}` outside src/core/
    blocking-io-confinement
                      raw socket/poll syscalls (and their headers) only in
                      src/net/ -- net::Socket/Listener own every file
                      descriptor so the bounded-I/O + typed-SocketError
                      contract stays auditable in one place
    file-io-confinement
                      fstream/filesystem/fopen (and the <fstream> /
                      <filesystem> headers) only in src/store/ -- the
                      CalibrationStore owns all persistence so atomic
                      writes and typed parse errors stay in one place

  Determinism contract (new):
    nondet-source     no std::random_device / time-of-day / wall-clock
                      sources outside src/core/telemetry -- every random or
                      temporal input must be a seeded Rng stream or an
                      explicit parameter, or replay breaks
    pointer-order     no pointer-keyed ordered containers, pointer
                      comparators or pointer hashing -- pointer values vary
                      run to run, so any order or hash derived from them is
                      nondeterministic
    unordered-export  no iteration over unordered containers that feeds
                      serialized/exported output (streams, string building,
                      thrown diagnostics) -- export order would depend on
                      the hash seed; copy into a sorted container first
    raw-mutex         src/core and src/dsp use stf::core::Mutex/LockGuard
                      (annotated for Clang thread-safety analysis) instead
                      of bare std::mutex/std::lock_guard, so new guarded
                      state stays visible to -Wthread-safety
    api-contract      public API entry points defined in src/ (declared in
                      the unit's header, nontrivial body, at least one
                      parameter) open with an STF_REQUIRE/STF_ASSERT
                      contract validating their inputs

Suppressions: append `// stf-analyze: allow(rule-a, rule-b)` to the finding
line, or put it in a comment on the line directly above. Every suppression
should carry a short justification after the closing parenthesis. The legacy
`// stf-lint: checked` escape is honored for checked-access.

Baseline: findings listed in the baseline file are reported as "baselined"
and do not fail the run. The committed baseline is empty -- the codebase is
clean -- and should stay empty; the mechanism exists so a future rule can
land before its sweep finishes without turning CI red.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

# ---------------------------------------------------------------------------
# Lexer: blank comments and literals, collect suppression comments
# ---------------------------------------------------------------------------

SUPPRESS_RE = re.compile(r"stf-analyze:\s*allow\(([^)]*)\)")
LEGACY_SUPPRESS_RE = re.compile(r"stf-lint:\s*checked")


def lex(text: str) -> tuple[list[str], dict[int, set[str]]]:
    """Split source text into code-only lines and per-line suppressions.

    Returns (code_lines, suppressed) where code_lines[i] is line i+1 with
    comments and string/char literal *contents* replaced by spaces (the
    quotes survive, so regexes still see e.g. an empty call argument), and
    suppressed maps a 1-based line number to the set of rule names allowed
    on that line. A suppression comment covers its own line and the line
    below it, so a comment-only line can shield the statement that follows.
    """
    code: list[str] = []
    comments: list[str] = []  # comment text per line, for suppression scan
    cur_code: list[str] = []
    cur_comment: list[str] = []
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            if state == "line_comment":
                state = "code"
            code.append("".join(cur_code))
            comments.append("".join(cur_comment))
            cur_code, cur_comment = [], []
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                # Raw string literal R"delim( ... )delim"
                if cur_code and cur_code[-1] == "R" and re.search(
                        r"(?:^|[^\w])R$", "".join(cur_code)):
                    m = re.match(r'"([^ ()\\\t\n]*)\(', text[i:])
                    if m:
                        state = "raw"
                        raw_delim = ")" + m.group(1) + '"'
                        cur_code.append('"')
                        i += 1 + len(m.group(1)) + 1
                        continue
                state = "string"
                cur_code.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                cur_code.append("'")
                i += 1
                continue
            cur_code.append(c)
            i += 1
            continue
        if state == "line_comment":
            cur_comment.append(c)
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                cur_comment.append(c)
                i += 1
            continue
        if state == "string":
            if c == "\\":
                i += 2
            elif c == '"':
                cur_code.append('"')
                state = "code"
                i += 1
            else:
                i += 1
            continue
        if state == "char":
            if c == "\\":
                i += 2
            elif c == "'":
                cur_code.append("'")
                state = "code"
                i += 1
            else:
                i += 1
            continue
        # state == "raw"
        if text.startswith(raw_delim, i):
            cur_code.append('"')
            state = "code"
            i += len(raw_delim)
        else:
            i += 1
    code.append("".join(cur_code))
    comments.append("".join(cur_comment))

    suppressed: dict[int, set[str]] = {}
    for idx, comment in enumerate(comments):
        rules: set[str] = set()
        for m in SUPPRESS_RE.finditer(comment):
            rules.update(r.strip() for r in m.group(1).split(",") if r.strip())
        if LEGACY_SUPPRESS_RE.search(comment):
            rules.add("checked-access")
        if rules:
            # The comment covers its own line and the one below it.
            for line_no in (idx + 1, idx + 2):
                suppressed.setdefault(line_no, set()).update(rules)
    return code, suppressed


# ---------------------------------------------------------------------------
# Analysis context and findings
# ---------------------------------------------------------------------------


@dataclass
class SourceFile:
    path: Path          # absolute
    rel: str            # posix path relative to the repo root
    raw_lines: list[str]
    code_lines: list[str]
    suppressed: dict[int, set[str]]

    @property
    def is_header(self) -> bool:
        return self.path.suffix == ".hpp"

    def in_dir(self, name: str) -> bool:
        return self.path.parent.name == name


@dataclass
class Finding:
    rule: str
    file: str           # repo-relative posix path
    line: int           # 1-based; 0 for file-level findings
    message: str
    severity: str = "error"
    baselined: bool = False

    def key(self) -> str:
        """Baseline identity: stable across unrelated line shifts."""
        digest = hashlib.sha256(
            f"{self.rule}|{self.file}|{self.message}".encode()).hexdigest()
        return digest[:16]

    def render(self) -> str:
        loc = f"{self.file}:{self.line}" if self.line else self.file
        tag = " [baselined]" if self.baselined else ""
        return f"{loc}: {self.rule}: {self.message}{tag}"


@dataclass
class Context:
    root: Path
    files: list[SourceFile] = field(default_factory=list)

    @property
    def headers(self) -> list[SourceFile]:
        return [f for f in self.files if f.is_header]

    @property
    def sources(self) -> list[SourceFile]:
        return [f for f in self.files if not f.is_header]


@dataclass
class Rule:
    name: str
    severity: str
    doc: str
    check: object  # callable(Context) -> iterable[Finding]


RULES: list[Rule] = []


def rule(name: str, severity: str = "error", doc: str = ""):
    """Register an analyzer rule; the decorated callable yields Findings."""

    def wrap(fn):
        RULES.append(Rule(name, severity, doc or (fn.__doc__ or "").strip(),
                          fn))
        return fn

    return wrap


def allowed(f: SourceFile, line_no: int, rule_name: str) -> bool:
    return rule_name in f.suppressed.get(line_no, ())


# ---------------------------------------------------------------------------
# Convention rules (carried over from stf_lint.py, now tokenizer-aware)
# ---------------------------------------------------------------------------


@rule("header-doc")
def check_header_doc(ctx: Context):
    """Public headers open with a file-level // doc comment."""
    for f in ctx.headers:
        for raw in f.raw_lines:
            text = raw.strip()
            if not text:
                continue
            if text.startswith("//"):
                break
            yield Finding("header-doc", f.rel, 1,
                          "public header must open with a file-level '//' "
                          "doc comment describing the unit")
            break


@rule("pragma-once")
def check_pragma_once(ctx: Context):
    """Headers start with #pragma once (after the doc comment)."""
    for f in ctx.headers:
        ok = False
        for code in f.code_lines:
            text = code.strip()
            if not text:
                continue
            ok = text.startswith("#pragma once")
            break
        if not ok:
            yield Finding("pragma-once", f.rel, 1,
                          "header must start with #pragma once")


INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


@rule("include-order")
def check_include_order(ctx: Context):
    """A .cpp includes its own header first."""
    for f in ctx.sources:
        own_header = f.path.with_suffix(".hpp")
        if not own_header.exists():
            continue  # e.g. a main-only translation unit
        expected = f"{f.path.parent.name}/{own_header.name}"
        # Includes live in raw text (the lexer blanks the quoted literal).
        for idx, raw in enumerate(f.raw_lines):
            m = INCLUDE_RE.match(raw)
            if not m:
                continue
            if m.group(1) != expected and not allowed(f, idx + 1,
                                                      "include-order"):
                yield Finding(
                    "include-order", f.rel, idx + 1,
                    f"first include must be the unit's own header "
                    f'"{expected}", found "{m.group(1)}"')
            break
        else:
            yield Finding("include-order", f.rel, 0,
                          f'no quoted include found; expected "{expected}" '
                          "first")


BANNED_CALL_RE = re.compile(r"\b(rand|srand|printf|fprintf|sprintf)\s*\(")


@rule("no-rand")
def check_banned_calls(ctx: Context):
    """No rand()/srand() (use stf::stats::Rng) and no printf-family."""
    for f in ctx.files:
        for idx, code in enumerate(f.code_lines):
            m = BANNED_CALL_RE.search(code)
            if m and not allowed(f, idx + 1, "no-rand"):
                hint = ("use stf::stats::Rng"
                        if m.group(1) in ("rand", "srand") else
                        "use iostreams")
                yield Finding("no-rand", f.rel, idx + 1,
                              f"call to {m.group(1)}() in src/ ({hint})")


GUARD_WINDOW = 15
GUARD_RE = re.compile(r"empty\s*\(")
ACCESS_RE = re.compile(r"\.\s*(?:front|back)\s*\(\s*\)")


@rule("checked-access")
def check_front_back(ctx: Context):
    """.front()/.back() only near an emptiness guard.

    Heuristic: the access is accepted when "empty(" appears on the same line
    or in the GUARD_WINDOW lines above it. A guard further away is worth
    re-stating with STF_ASSERT anyway.
    """
    for f in ctx.files:
        for idx, code in enumerate(f.code_lines):
            if not ACCESS_RE.search(code):
                continue
            if allowed(f, idx + 1, "checked-access"):
                continue
            lo = max(0, idx - GUARD_WINDOW)
            if any(GUARD_RE.search(w) for w in f.code_lines[lo:idx + 1]):
                continue
            yield Finding(
                "checked-access", f.rel, idx + 1,
                ".front()/.back() without a nearby emptiness guard; add a "
                "check or an STF_REQUIRE/STF_ASSERT (or '// stf-analyze: "
                "allow(checked-access)' with a justification)")


@rule("test-coverage")
def check_test_coverage(ctx: Context):
    """Every src/<mod>/<name>.cpp has its header referenced under tests/."""
    tests_dir = ctx.root / "tests"
    blob = "\n".join(
        p.read_text(errors="replace")
        for p in sorted(tests_dir.rglob("*.cpp")))
    for f in ctx.sources:
        header = f"{f.path.parent.name}/{f.path.stem}.hpp"
        if header not in blob:
            yield Finding("test-coverage", f.rel, 0,
                          f"no file under tests/ references {header}")


RAW_THREAD_RE = re.compile(
    r"\bstd\s*::\s*(thread|jthread|async)\b|\bpthread_create\s*\(")


@rule("raw-thread")
def check_raw_threads(ctx: Context):
    """No ad-hoc threads outside src/core/ and src/service/.

    The parallel execution core owns every worker thread in the process;
    threading elsewhere would bypass STF_THREADS, the nested-region inlining
    that prevents pool deadlock, and the determinism contract. The service
    layer is the second sanctioned home: its accept/reader/worker threads
    move bytes and queue work but never compute a disposition themselves --
    every lot still runs through BatchRuntime on the core pool.
    """
    for f in ctx.files:
        if f.in_dir("core") or f.in_dir("service"):
            continue
        for idx, code in enumerate(f.code_lines):
            m = RAW_THREAD_RE.search(code)
            if m and not allowed(f, idx + 1, "raw-thread"):
                yield Finding(
                    "raw-thread", f.rel, idx + 1,
                    f"{m.group(0).strip()} outside src/core/ and "
                    "src/service/; use stf::core::parallel_for or "
                    "parallel_map")


# Raw socket/poll syscalls and the headers that provide them. `send`/`recv`
# etc. are matched as free calls only -- the lexer already blanked strings,
# and the negative lookbehind skips member calls (socket.send_all) and
# qualified names (stf::net::poll_for).
BLOCKING_IO_RE = re.compile(
    r"(?<![\w.:>])"
    r"(?:::\s*)?"
    r"(socket|accept4?|connect|bind|listen|recv|recvfrom|recvmsg"
    r"|send|sendto|sendmsg|poll|ppoll|select|pselect"
    r"|epoll_(?:create1?|ctl|wait)|setsockopt|getsockopt|getsockname"
    r"|inet_pton|inet_ntop)\s*\(")

BLOCKING_IO_HEADER_RE = re.compile(
    r"#\s*include\s*<(sys/socket\.h|sys/epoll\.h|poll\.h|netinet/[\w./]+"
    r"|arpa/inet\.h|netdb\.h)>")


@rule("blocking-io-confinement")
def check_blocking_io_confinement(ctx: Context):
    """Raw socket/poll I/O lives in src/net/ only.

    The service's overload-safety story depends on every blocking call
    being bounded (timeouts, poll intervals, EINTR retries) and every
    syscall failure becoming a typed SocketError. That discipline is
    auditable only while the syscall surface stays in one place:
    net::Socket/Listener own the file descriptors; everything else speaks
    frames. A raw socket(2)/poll(2) call -- or the headers providing them
    -- anywhere else bypasses the bounded-I/O contract.
    """
    for f in ctx.files:
        if f.in_dir("net"):
            continue
        for idx, code in enumerate(f.code_lines):
            m = BLOCKING_IO_RE.search(code)
            if m is None:
                m = BLOCKING_IO_HEADER_RE.search(code)
            if m and not allowed(f, idx + 1, "blocking-io-confinement"):
                yield Finding(
                    "blocking-io-confinement", f.rel, idx + 1,
                    f"raw I/O {m.group(1)} outside src/net/; route "
                    "sockets through net::Socket and net::Listener")


FILE_IO_RE = re.compile(
    r"(?<![\w:.>])(std::(?:i|o)?fstream|std::filesystem"
    r"|fopen|freopen|tmpfile|mkstemp)\s*[(<{:\s]")

FILE_IO_HEADER_RE = re.compile(r"#\s*include\s*<(fstream|filesystem)>")


@rule("file-io-confinement")
def check_file_io_confinement(ctx: Context):
    """Filesystem access lives in src/store/ only.

    The store is the one component allowed to touch disk, and it pays for
    the privilege: atomic temp-then-rename writes, length-prefixed framing,
    typed errors on every corrupt byte. A stray ofstream in another module
    gets none of that -- a crash mid-write leaves a half file nothing can
    parse, and replay determinism quietly gains a hidden input. Pipeline
    code computes; persistence goes through CalibrationStore (or stays in
    tools/, examples/ and tests/, which this rule does not scan).
    """
    for f in ctx.files:
        if f.in_dir("store"):
            continue
        for idx, code in enumerate(f.code_lines):
            m = FILE_IO_RE.search(code)
            if m is None:
                m = FILE_IO_HEADER_RE.search(code)
            if m and not allowed(f, idx + 1, "file-io-confinement"):
                yield Finding(
                    "file-io-confinement", f.rel, idx + 1,
                    f"file I/O {m.group(1)} outside src/store/; persist "
                    "through store::CalibrationStore")


EMPTY_CATCH_RE = re.compile(r"catch\s*\(\s*\.\.\.\s*\)\s*\{\s*\}")


@rule("no-empty-catch")
def check_empty_catch(ctx: Context):
    """No empty `catch (...) {}` outside src/core/.

    Silently swallowing every exception hides contract violations the
    guarded runtime must surface as typed dispositions. The pool-teardown
    catches in src/core/ are the single sanctioned exception.
    """
    for f in ctx.files:
        if f.in_dir("core"):
            continue
        code = "\n".join(f.code_lines)
        for m in EMPTY_CATCH_RE.finditer(code):
            line_no = code.count("\n", 0, m.start()) + 1
            if not allowed(f, line_no, "no-empty-catch"):
                yield Finding(
                    "no-empty-catch", f.rel, line_no,
                    "empty 'catch (...)' outside src/core/; handle the "
                    "error, translate it, or let it propagate")


# ---------------------------------------------------------------------------
# Determinism rules
# ---------------------------------------------------------------------------

NONDET_RE = re.compile(
    r"std\s*::\s*random_device"
    r"|std\s*::\s*chrono\s*::\s*(?:system_clock|high_resolution_clock"
    r"|steady_clock)"
    r"|\bgettimeofday\s*\("
    r"|\bclock\s*\(\s*\)"
    r"|(?:\bstd\s*::\s*|::\s*)time\s*\("
    r"|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)")


@rule("nondet-source")
def check_nondet_sources(ctx: Context):
    """No nondeterministic randomness/time sources outside src/core/telemetry.

    Reproducibility is the framework's headline guarantee: a (seed, lot,
    scenario) must produce bit-identical dispositions on every run and
    thread count. Randomness must come from stf::stats::Rng streams and
    time must be an explicit parameter; the telemetry clock (steady_clock
    in core/telemetry.cpp) is the single sanctioned wall-clock reader and
    never feeds a disposition.
    """
    for f in ctx.files:
        if f.path.parent.name == "core" and f.path.stem == "telemetry":
            continue
        for idx, code in enumerate(f.code_lines):
            m = NONDET_RE.search(code)
            if m and not allowed(f, idx + 1, "nondet-source"):
                yield Finding(
                    "nondet-source", f.rel, idx + 1,
                    f"nondeterministic source {m.group(0).strip()} outside "
                    "src/core/telemetry; derive randomness from "
                    "stf::stats::Rng and take time as a parameter")


POINTER_ORDER_RE = re.compile(
    r"std\s*::\s*(?:multi)?(?:map|set)\s*<\s*[\w:\s]+\*"
    r"|std\s*::\s*unordered_(?:multi)?(?:map|set)\s*<\s*[\w:\s]+\*"
    r"|std\s*::\s*(?:less|greater)\s*<\s*[\w:\s]+\*\s*>"
    r"|std\s*::\s*hash\s*<\s*[\w:\s]+\*\s*>")


@rule("pointer-order")
def check_pointer_order(ctx: Context):
    """No pointer-keyed containers, pointer comparators or pointer hashing.

    Pointer values change run to run (ASLR, allocation order), so any
    ordering or hash derived from them is nondeterministic. Key on a stable
    identity (index, name, id) instead.
    """
    for f in ctx.files:
        for idx, code in enumerate(f.code_lines):
            m = POINTER_ORDER_RE.search(code)
            if m and not allowed(f, idx + 1, "pointer-order"):
                yield Finding(
                    "pointer-order", f.rel, idx + 1,
                    f"pointer-value ordering/hashing ({m.group(0).strip()}); "
                    "key on a stable identity (index, name, id) instead")


UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:multi)?(?:map|set)\s*<[^;{}]*>[&\s]+(\w+)\s*[;,={)]")
UNORDERED_ALIAS_RE = re.compile(
    r"using\s+(\w+)\s*=\s*std\s*::\s*unordered_(?:multi)?(?:map|set)\b")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*([\w.\->]+)\s*\)")
EXPORTISH_RE = re.compile(r"<<|\bthrow\b|\+=\s*\w|\.append\s*\(")
EXPORT_WINDOW = 6


@rule("unordered-export")
def check_unordered_export(ctx: Context):
    """No unordered-container iteration feeding serialized/exported output.

    Iterating an unordered map/set visits elements in hash order, which
    varies with the hash seed and element history. When such a loop writes
    to a stream, builds a string, or throws (the diagnostic names whichever
    element came first), the output is nondeterministic. Copy the elements
    into a sorted container (std::map, sorted vector) before exporting.
    """
    # Pass 1, repo-wide: names of variables/members/params with an unordered
    # type, plus user aliases of unordered containers and variables declared
    # through those aliases.
    aliases: set[str] = set()
    for f in ctx.files:
        for code in f.code_lines:
            for m in UNORDERED_ALIAS_RE.finditer(code):
                aliases.add(m.group(1))
    unordered_names: set[str] = set()
    alias_decl_res = [
        re.compile(r"\b" + re.escape(a) + r"[&\s]+(\w+)\s*[;,={)]")
        for a in aliases
    ]
    for f in ctx.files:
        for code in f.code_lines:
            for m in UNORDERED_DECL_RE.finditer(code):
                unordered_names.add(m.group(1))
            for decl_re in alias_decl_res:
                for m in decl_re.finditer(code):
                    unordered_names.add(m.group(1))

    # Pass 2: range-fors whose sequence resolves (by final path component)
    # to an unordered name, with export-ish statements in the loop window.
    for f in ctx.files:
        for idx, code in enumerate(f.code_lines):
            m = RANGE_FOR_RE.search(code)
            if not m:
                continue
            seq = re.split(r"\.|->", m.group(1))[-1]
            if seq not in unordered_names:
                continue
            if allowed(f, idx + 1, "unordered-export"):
                continue
            # Loop body extent: a single-statement body (`for (...) stmt;` on
            # one line) is just that statement; otherwise scan a fixed window
            # of following lines (braces are not tracked -- the window errs
            # toward catching an export a few lines into the block).
            rest = code[m.end():]
            if ";" in rest and "{" not in rest:
                body = [rest]
            else:
                body = [rest] + f.code_lines[idx + 1:idx + 1 + EXPORT_WINDOW]
            if any(EXPORTISH_RE.search(w) for w in body):
                yield Finding(
                    "unordered-export", f.rel, idx + 1,
                    f"iteration over unordered container '{seq}' feeds "
                    "serialized or exported output; copy into a sorted "
                    "container first")


RAW_MUTEX_RE = re.compile(
    r"std\s*::\s*(?:mutex|shared_mutex|recursive_mutex)\s+\w"
    r"|std\s*::\s*(?:lock_guard|unique_lock|scoped_lock)\s*<")


@rule("raw-mutex")
def check_raw_mutex(ctx: Context):
    """src/core and src/dsp lock through the annotated wrappers.

    stf::core::Mutex / LockGuard / UniqueLock (core/annotations.hpp) carry
    Clang thread-safety attributes; bare std::mutex state is invisible to
    -Wthread-safety, so new guarded state in the concurrency core must use
    the wrappers. Other modules are exempt until they grow shared state.
    """
    for f in ctx.files:
        if not (f.in_dir("core") or f.in_dir("dsp")):
            continue
        if f.path.name == "annotations.hpp":
            continue  # the wrapper itself owns the std types
        for idx, code in enumerate(f.code_lines):
            m = RAW_MUTEX_RE.search(code)
            if m and not allowed(f, idx + 1, "raw-mutex"):
                yield Finding(
                    "raw-mutex", f.rel, idx + 1,
                    f"{m.group(0).strip()} in the concurrency core; use "
                    "stf::core::Mutex/LockGuard/UniqueLock from "
                    "core/annotations.hpp so -Wthread-safety sees the lock")


SIMD_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(?:immintrin|x86intrin|emmintrin|xmmintrin|arm_neon)"
    r"\.h>")
SIMD_TOKEN_RE = re.compile(
    r"\b_mm(?:256|512)?_\w+|\b__m(?:128|256|512)[di]?\b"
    r"|\bv(?:ld|st)1q?_\w+|\bfloat64x[12]_t\b")


@rule("simd-confinement")
def check_simd_confinement(ctx: Context):
    """Raw SIMD intrinsics live only in src/core/simd.hpp.

    The bit-exactness contract (DESIGN.md section 12) holds because every
    vectorized kernel goes through the simd::pack abstraction, whose scalar
    backend is the reference implementation. An intrinsic header or an
    _mm_/vld1q_ token anywhere else creates an ISA-specific code path with
    no scalar twin and no STF_SIMD kill switch, so the wrapper header is
    the single sanctioned home for them.
    """
    for f in ctx.files:
        if f.in_dir("core") and f.path.name == "simd.hpp":
            continue
        for idx, code in enumerate(f.code_lines):
            m = SIMD_INCLUDE_RE.search(code) or SIMD_TOKEN_RE.search(code)
            if m and not allowed(f, idx + 1, "simd-confinement"):
                yield Finding(
                    "simd-confinement", f.rel, idx + 1,
                    f"raw SIMD intrinsic '{m.group(0).strip()}' outside "
                    "core/simd.hpp; use the simd::pack abstraction so the "
                    "kernel keeps a scalar reference twin and honors the "
                    "STF_SIMD kill switch")


# A function definition at namespace/class scope: return type + name + '('.
# Intentionally loose; candidates are filtered by the header cross-check.
FUNC_DEF_RE = re.compile(
    r"^(?:[\w:<>,&*~\s]+?[\s&*])?((?:\w+::)*\w+)\s*\(")
CONTRACT_RE = re.compile(
    r"STF_REQUIRE|STF_ASSERT|STF_ENSURE|\bvalidate\w*\s*\(|throw\s")
API_CONTRACT_MIN_BODY = 8


@rule("api-contract")
def check_api_contract(ctx: Context):
    """Public API entry points open with an input-validating contract.

    An entry point here is a function defined in a src/ .cpp, declared in
    the unit's own header, taking at least one parameter, with a nontrivial
    body (>= API_CONTRACT_MIN_BODY code lines). Its body must validate its
    inputs: an STF_REQUIRE/STF_ASSERT/STF_ENSURE, a call into a validate
    helper, or an explicit throw. Trivial accessors and forwarders are
    exempt by the size threshold; a function whose inputs genuinely need no
    validation can say so with
    `// stf-analyze: allow(api-contract) -- <why>`.
    """
    headers_by_dir: dict[Path, str] = {}
    for f in ctx.sources:
        own_header = f.path.with_suffix(".hpp")
        if not own_header.exists():
            continue
        if own_header not in headers_by_dir:
            headers_by_dir[own_header] = own_header.read_text(
                errors="replace")
        header_text = headers_by_dir[own_header]

        lines = f.code_lines
        idx = 0
        while idx < len(lines):
            line = lines[idx]
            # A definition opens a brace on this or the next two lines and
            # sits at indentation zero (namespace scope after clang-format).
            if not line or line[0] in " \t#}/":
                idx += 1
                continue
            m = FUNC_DEF_RE.match(line)
            if not m or ";" in line.split("(")[0]:
                idx += 1
                continue
            name = m.group(1).split("::")[-1]
            # Find the opening brace and the parameter list.
            sig = line
            j = idx
            while "{" not in sig and ";" not in sig and j + 1 < len(lines) \
                    and j - idx < 6:
                j += 1
                sig += " " + lines[j].strip()
            if "{" not in sig or ";" in sig.split("{")[0]:
                idx += 1
                continue
            params = sig.split("(", 1)[1].split(")")[0].strip()
            if "}" in sig.split("{", 1)[1]:
                # Whole body inline on the signature line ({} ctors,
                # one-line forwarders): trivially below the size floor.
                idx = j + 1
                continue
            body_start = j + 1
            # Body extent: to the next column-zero closing brace.
            k = body_start
            while k < len(lines) and not lines[k].startswith("}"):
                k += 1
            body = lines[body_start:k]
            idx_next = k + 1

            declared = re.search(r"\b" + re.escape(name) + r"\s*\(",
                                 header_text) is not None
            body_code = [b for b in body if b.strip()]
            if (declared and params and params != "void"
                    and len(body_code) >= API_CONTRACT_MIN_BODY
                    and not any(CONTRACT_RE.search(b) for b in [sig] + body)
                    and not allowed(f, idx + 1, "api-contract")):
                yield Finding(
                    "api-contract", f.rel, idx + 1,
                    f"public entry point '{name}' has no input contract; "
                    "open with STF_REQUIRE (see core/contracts.hpp) or "
                    "suppress with a justification")
            idx = idx_next


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def load_files(root: Path) -> Context:
    ctx = Context(root=root)
    src = root / "src"
    for path in sorted(src.rglob("*.hpp")) + sorted(src.rglob("*.cpp")):
        text = path.read_text(errors="replace")
        code_lines, suppressed = lex(text)
        ctx.files.append(
            SourceFile(path=path,
                       rel=path.relative_to(root).as_posix(),
                       raw_lines=text.splitlines(),
                       code_lines=code_lines,
                       suppressed=suppressed))
    return ctx


def analyze(root: Path) -> list[Finding]:
    ctx = load_files(root)
    findings: list[Finding] = []
    for r in RULES:
        for f in r.check(ctx):
            f.severity = r.severity
            findings.append(f)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings


def load_baseline(path: Path) -> set[str]:
    if not path.exists():
        return set()
    data = json.loads(path.read_text())
    return {e["key"] for e in data.get("entries", [])}


def write_baseline(path: Path, findings: list[Finding]) -> None:
    entries = [{
        "key": f.key(),
        "rule": f.rule,
        "file": f.file,
        "line": f.line,
    } for f in findings]
    path.write_text(
        json.dumps({"entries": entries}, indent=2, sort_keys=True) + "\n")


def findings_json(findings: list[Finding]) -> str:
    return json.dumps(
        {
            "findings": [{
                "rule": f.rule,
                "file": f.file,
                "line": f.line,
                "severity": f.severity,
                "baselined": f.baselined,
                "message": f.message,
            } for f in findings],
            "total": len(findings),
            "fatal": sum(1 for f in findings
                         if not f.baselined and f.severity == "error"),
        },
        indent=2) + "\n"


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="stf_analyze",
        description="Static analyzer for the signature-test framework")
    parser.add_argument("root", nargs="?", default=".",
                        help="repository root (holds src/ and tests/)")
    parser.add_argument("--json", nargs="?", const="-", default=None,
                        metavar="PATH",
                        help="write findings JSON to PATH (default stdout)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file "
                             "(default tools/stf_analyze_baseline.json)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    args = parser.parse_args(argv[1:])

    if args.list_rules:
        for r in RULES:
            first_line = r.doc.splitlines()[0] if r.doc else ""
            print(f"{r.name:18} {r.severity:6} {first_line}")
        return 0

    root = Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"stf_analyze: no src/ under {root}", file=sys.stderr)
        return 2

    baseline_path = (Path(args.baseline) if args.baseline else
                     root / "tools" / "stf_analyze_baseline.json")
    findings = analyze(root)

    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(f"stf_analyze: baseline written: {baseline_path} "
              f"({len(findings)} entries)")
        return 0

    baseline = load_baseline(baseline_path)
    for f in findings:
        f.baselined = f.key() in baseline

    if args.json is not None:
        payload = findings_json(findings)
        if args.json == "-":
            print(payload, end="")
        else:
            Path(args.json).write_text(payload)

    fatal = [f for f in findings if not f.baselined and f.severity == "error"]
    if args.json != "-":
        for f in findings:
            print(f.render())
        n_files = len(load_files(root).files)
        n_base = sum(1 for f in findings if f.baselined)
        if fatal:
            print(f"stf_analyze: {len(fatal)} violation(s) "
                  f"({n_base} baselined) in {n_files} files")
        else:
            print(f"stf_analyze: OK ({n_files} files, {len(RULES)} rules"
                  + (f", {n_base} baselined" if n_base else "") + ")")
    return 1 if fatal else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
