#!/usr/bin/env python3
"""Regression tests for tools/stf_analyze.py.

Plain-assert tests (no pytest dependency) run by ctest. Each test builds a
throwaway repo tree (src/ + tests/) in a temp directory, runs the analyzer
over it, and checks which rules fire. Covers a positive and a negative case
per rule, the lexer (comments and string literals must not trigger rules),
inline suppressions, the committed-baseline flow, and the --json schema.
"""

from __future__ import annotations

import contextlib
import io
import json
import tempfile
from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).resolve().parent))

import stf_analyze  # noqa: E402

HEADER_OK = "// Unit doc comment.\n#pragma once\n"


def unit(mod: str, name: str, body: str = "",
         header_extra: str = "") -> dict[str, str]:
    """A convention-clean translation unit plus its test reference."""
    return {
        f"src/{mod}/{name}.hpp": HEADER_OK + header_extra,
        f"src/{mod}/{name}.cpp": f'#include "{mod}/{name}.hpp"\n\n' + body,
        f"tests/{name}_test.cpp": f'// include "{mod}/{name}.hpp"\n',
    }


def write_tree(root: Path, files: dict[str, str]) -> None:
    for rel, text in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text)


def run(root: Path, files: dict[str, str]) -> list:
    write_tree(root, files)
    (root / "tests").mkdir(exist_ok=True)
    return stf_analyze.analyze(root)


def hits(findings: list, rule: str) -> list:
    return [f for f in findings if f.rule == rule]


def run_main(args: list[str]) -> tuple[int, str]:
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        rc = stf_analyze.main(["stf_analyze"] + args)
    return rc, out.getvalue()


# ---------------------------------------------------------------------------
# Fixture sanity + convention rules
# ---------------------------------------------------------------------------


def test_clean_unit_has_no_findings(tmp: Path) -> None:
    findings = run(tmp, unit("dsp", "clean"))
    assert findings == [], [f.render() for f in findings]


def test_header_doc_missing_is_flagged(tmp: Path) -> None:
    files = unit("dsp", "x")
    files["src/dsp/x.hpp"] = "#pragma once\n"
    findings = run(tmp, files)
    assert len(hits(findings, "header-doc")) == 1, findings


def test_pragma_once_missing_is_flagged(tmp: Path) -> None:
    files = unit("dsp", "x")
    files["src/dsp/x.hpp"] = "// Doc.\n#include <vector>\n"
    findings = run(tmp, files)
    assert len(hits(findings, "pragma-once")) == 1, findings


def test_include_order_wrong_first_include(tmp: Path) -> None:
    files = unit("dsp", "x")
    files["src/dsp/x.cpp"] = ('#include "dsp/other.hpp"\n'
                              '#include "dsp/x.hpp"\n')
    findings = run(tmp, files)
    assert len(hits(findings, "include-order")) == 1, findings


def test_no_rand_flags_rand_call(tmp: Path) -> None:
    findings = run(tmp, unit("dsp", "x", "int f() { return rand(); }\n"))
    assert len(hits(findings, "no-rand")) == 1, findings


def test_lexer_ignores_comments_and_strings(tmp: Path) -> None:
    body = ('// rand() in a comment\n'
            '/* rand() in a\n   block comment */\n'
            'const char* s = "rand()";\n'
            'const char* r = R"(rand())";\n')
    findings = run(tmp, unit("dsp", "x", body))
    assert hits(findings, "no-rand") == [], \
        [f.render() for f in findings]


def test_checked_access_without_guard(tmp: Path) -> None:
    findings = run(tmp, unit("dsp", "x",
                             "int f(V& v) { return v.front(); }\n"))
    assert len(hits(findings, "checked-access")) == 1, findings


def test_checked_access_with_guard_is_clean(tmp: Path) -> None:
    body = ("int f(V& v) {\n"
            "  if (v.empty()) return 0;\n"
            "  return v.front();\n"
            "}\n")
    findings = run(tmp, unit("dsp", "x", body))
    assert hits(findings, "checked-access") == [], findings


def test_legacy_stf_lint_checked_escape_still_works(tmp: Path) -> None:
    body = "int f(V& v) { return v.front(); }  // stf-lint: checked\n"
    findings = run(tmp, unit("dsp", "x", body))
    assert hits(findings, "checked-access") == [], findings


def test_test_coverage_unreferenced_unit(tmp: Path) -> None:
    files = unit("dsp", "x")
    files["tests/x_test.cpp"] = "// nothing relevant\n"
    findings = run(tmp, files)
    assert len(hits(findings, "test-coverage")) == 1, findings


def test_raw_thread_outside_core(tmp: Path) -> None:
    body = "void f() { std::thread t([] {}); t.join(); }\n"
    findings = run(tmp / "a", unit("sigtest", "x", body))
    assert len(hits(findings, "raw-thread")) == 1, findings
    findings = run(tmp / "b", unit("core", "y", body))
    assert hits(findings, "raw-thread") == [], findings
    # The service layer's I/O threads are the second sanctioned home.
    findings = run(tmp / "c", unit("service", "z", body))
    assert hits(findings, "raw-thread") == [], findings


def test_blocking_io_confined_to_net(tmp: Path) -> None:
    body = ("int f() { return socket(2, 1, 0); }\n"
            "int g(int fd, void* b) { return recv(fd, b, 8, 0); }\n")
    findings = run(tmp / "a", unit("service", "x", body))
    assert len(hits(findings, "blocking-io-confinement")) == 2, findings
    findings = run(tmp / "b", unit("net", "y", body))
    assert hits(findings, "blocking-io-confinement") == [], findings


def test_blocking_io_headers_and_member_calls(tmp: Path) -> None:
    # The socket headers are banned outside src/net/ too...
    files = unit("sigtest", "x")
    files["src/sigtest/x.cpp"] = ('#include "sigtest/x.hpp"\n\n'
                                  "#include <sys/socket.h>\n")
    findings = run(tmp / "a", files)
    assert len(hits(findings, "blocking-io-confinement")) == 1, findings
    # ...but member calls and qualified wrappers are not raw syscalls.
    body = ("void f(S& s) { s.send(1); s.connect(); }\n"
            "void g() { stf::net::poll(); auto b = std::bind(f); }\n")
    findings = run(tmp / "b", unit("service", "y", body))
    assert hits(findings, "blocking-io-confinement") == [], findings


def test_file_io_confined_to_store(tmp: Path) -> None:
    body = ('void f() { std::ofstream out("x.bin"); out << 1; }\n'
            'bool g() { return std::filesystem::exists("x.bin"); }\n')
    findings = run(tmp / "a", unit("sigtest", "x", body))
    assert len(hits(findings, "file-io-confinement")) == 2, findings
    findings = run(tmp / "b", unit("store", "y", body))
    assert hits(findings, "file-io-confinement") == [], findings


def test_file_io_headers_and_lookalikes(tmp: Path) -> None:
    # The file-I/O headers are banned outside src/store/ too...
    files = unit("service", "x")
    files["src/service/x.cpp"] = ('#include "service/x.hpp"\n\n'
                                  "#include <fstream>\n")
    findings = run(tmp / "a", files)
    assert len(hits(findings, "file-io-confinement")) == 1, findings
    # ...but stringstreams, member .open() calls and words merely
    # containing "fopen" are not filesystem access.
    body = ("void f() { std::stringstream ss; ss << 1; }\n"
            "void g(S& s) { s.fopen(); my_fopen(); }\n")
    findings = run(tmp / "b", unit("service", "y", body))
    assert hits(findings, "file-io-confinement") == [], findings


def test_no_empty_catch_outside_core(tmp: Path) -> None:
    body = "void f() { try { g(); } catch (...) {} }\n"
    findings = run(tmp, unit("sigtest", "x", body))
    assert len(hits(findings, "no-empty-catch")) == 1, findings


# ---------------------------------------------------------------------------
# Determinism rules
# ---------------------------------------------------------------------------


def test_nondet_source_flagged_outside_telemetry(tmp: Path) -> None:
    body = "int f() { return std::random_device{}(); }\n"
    findings = run(tmp, unit("stats", "x", body))
    assert len(hits(findings, "nondet-source")) == 1, findings


def test_nondet_source_telemetry_clock_is_exempt(tmp: Path) -> None:
    body = ("std::uint64_t now() {\n"
            "  return std::chrono::steady_clock::now()"
            ".time_since_epoch().count();\n"
            "}\n")
    findings = run(tmp / "a", unit("core", "telemetry", body))
    assert hits(findings, "nondet-source") == [], findings
    findings = run(tmp / "b", unit("sigtest", "x", body))
    assert len(hits(findings, "nondet-source")) == 1, findings


def test_pointer_order_keyed_container(tmp: Path) -> None:
    findings = run(tmp / "a", unit("sigtest", "x",
                                   "std::set<Device*> live_;\n"))
    assert len(hits(findings, "pointer-order")) == 1, findings
    findings = run(tmp / "b", unit("sigtest", "y",
                                   "std::set<std::string> names_;\n"))
    assert hits(findings, "pointer-order") == [], findings


def test_unordered_export_stream_in_loop(tmp: Path) -> None:
    body = ("std::unordered_map<std::string, int> m;\n"
            "void dump(std::ostream& os) {\n"
            "  for (const auto& [k, v] : m) {\n"
            "    os << k;\n"
            "  }\n"
            "}\n")
    findings = run(tmp, unit("sigtest", "x", body))
    assert len(hits(findings, "unordered-export")) == 1, findings


def test_unordered_export_single_statement_body_does_not_peek(
        tmp: Path) -> None:
    # The collect-then-sort idiom: the one-statement loop body must not be
    # widened into the following lines (which legitimately throw).
    body = ("std::unordered_map<std::string, int> m;\n"
            "void check() {\n"
            "  std::vector<std::string> names;\n"
            "  for (const auto& [k, v] : m) names.push_back(k);\n"
            "  std::sort(names.begin(), names.end());\n"
            "  for (const auto& n : names)\n"
            "    if (bad(n)) throw std::runtime_error(n);\n"
            "}\n")
    findings = run(tmp, unit("sigtest", "x", body))
    assert hits(findings, "unordered-export") == [], \
        [f.render() for f in findings]


def test_raw_mutex_in_core_and_dsp_only(tmp: Path) -> None:
    body = "std::mutex m_;\n"
    findings = run(tmp / "a", unit("core", "x", body))
    assert len(hits(findings, "raw-mutex")) == 1, findings
    findings = run(tmp / "b", unit("dsp", "y", body))
    assert len(hits(findings, "raw-mutex")) == 1, findings
    findings = run(tmp / "c", unit("sigtest", "z", body))
    assert hits(findings, "raw-mutex") == [], findings


def test_simd_confinement_flags_intrinsics_outside_wrapper(tmp: Path) -> None:
    body = ("#include <immintrin.h>\n"
            "__m256d v = _mm256_add_pd(a, b);\n"
            "float64x2_t w = vld1q_f64(p);\n")
    findings = run(tmp, unit("dsp", "kern", body))
    assert len(hits(findings, "simd-confinement")) == 3, \
        [f.render() for f in findings]


def test_simd_confinement_wrapper_and_suppression_exempt(tmp: Path) -> None:
    files = unit("core", "simd",
                 header_extra="#include <immintrin.h>\n"
                              "__m256d v = _mm256_setzero_pd();\n")
    files["src/rf/probe.hpp"] = (
        HEADER_OK +
        "// stf-analyze: allow(simd-confinement) -- pedagogical example\n"
        "using packd = __m256d;\n")
    files["tests/probe_test.cpp"] = '// include "rf/probe.hpp"\n'
    findings = run(tmp, files)
    assert hits(findings, "simd-confinement") == [], \
        [f.render() for f in findings]


API_BODY_NO_CONTRACT = ("int frob(int x) {\n"
                        + "  x += 1;\n" * 9 +
                        "  return x;\n"
                        "}\n")


def test_api_contract_missing_is_flagged(tmp: Path) -> None:
    files = unit("sigtest", "x", API_BODY_NO_CONTRACT,
                 header_extra="int frob(int x);\n")
    findings = run(tmp, files)
    assert len(hits(findings, "api-contract")) == 1, findings


def test_api_contract_satisfied_by_require(tmp: Path) -> None:
    body = API_BODY_NO_CONTRACT.replace(
        "int frob(int x) {\n",
        'int frob(int x) {\n  STF_REQUIRE(x > 0, "frob: x");\n')
    files = unit("sigtest", "x", body,
                 header_extra="int frob(int x);\n")
    findings = run(tmp, files)
    assert hits(findings, "api-contract") == [], findings


def test_api_contract_skips_undeclared_and_small_functions(
        tmp: Path) -> None:
    # Not declared in the unit's header -> internal helper, exempt; tiny
    # bodies are under the size floor.
    findings = run(tmp / "a", unit("sigtest", "x", API_BODY_NO_CONTRACT))
    assert hits(findings, "api-contract") == [], findings
    files = unit("sigtest", "y", "int tiny(int x) { return x; }\n",
                 header_extra="int tiny(int x);\n")
    findings = run(tmp / "b", files)
    assert hits(findings, "api-contract") == [], findings


def test_api_contract_inline_ctor_body_does_not_swallow_followers(
        tmp: Path) -> None:
    # A `{}` body on the signature line used to make the rule scan to the
    # next column-zero brace, claiming the following functions as the body.
    body = ("Thing::Thing(std::vector<int> v)\n"
            "    : v_(std::move(v)) {}\n"
            "\n"
            "namespace {\n"
            "int helper(int x) {\n"
            + "  x += 1;\n" * 9 +
            "  return x;\n"
            "}\n"
            "}  // namespace\n")
    files = unit("sigtest", "x", body,
                 header_extra="  Thing(std::vector<int> v);\n")
    findings = run(tmp, files)
    assert hits(findings, "api-contract") == [], \
        [f.render() for f in findings]


# ---------------------------------------------------------------------------
# Suppressions, baseline, CLI
# ---------------------------------------------------------------------------


def test_suppression_covers_own_and_next_line(tmp: Path) -> None:
    body = ("// stf-analyze: allow(no-rand) -- test fixture\n"
            "int f() { return rand(); }\n"
            "int g() { return rand(); }\n")
    findings = run(tmp, unit("dsp", "x", body))
    flagged = hits(findings, "no-rand")
    assert len(flagged) == 1, [f.render() for f in findings]
    assert "g()" not in flagged[0].message


def test_suppression_lists_multiple_rules(tmp: Path) -> None:
    body = ("int f(V& v) {  // stf-analyze: allow(no-rand, checked-access)\n"
            "  return v.front() + rand();\n"
            "}\n")
    findings = run(tmp, unit("dsp", "x", body))
    assert hits(findings, "no-rand") == [], findings
    assert hits(findings, "checked-access") == [], findings


def test_baseline_roundtrip_suppresses_known_findings(tmp: Path) -> None:
    write_tree(tmp, unit("dsp", "x", "int f() { return rand(); }\n"))
    baseline = tmp / "baseline.json"
    rc, _ = run_main([str(tmp), "--baseline", str(baseline),
                      "--write-baseline"])
    assert rc == 0
    assert len(json.loads(baseline.read_text())["entries"]) == 1

    rc, out = run_main([str(tmp), "--baseline", str(baseline)])
    assert rc == 0, out
    assert "[baselined]" in out, out

    # Without the baseline the same finding is fatal.
    rc, out = run_main([str(tmp)])
    assert rc == 1, out


def test_json_output_schema(tmp: Path) -> None:
    write_tree(tmp, unit("dsp", "x", "int f() { return rand(); }\n"))
    report = tmp / "findings.json"
    rc, _ = run_main([str(tmp), "--json", str(report)])
    assert rc == 1
    data = json.loads(report.read_text())
    assert data["total"] == 1 and data["fatal"] == 1, data
    entry = data["findings"][0]
    for key in ("rule", "file", "line", "severity", "baselined", "message"):
        assert key in entry, entry
    assert entry["rule"] == "no-rand", entry


def test_clean_tree_exits_zero_with_ok_banner(tmp: Path) -> None:
    write_tree(tmp, unit("dsp", "clean"))
    rc, out = run_main([str(tmp)])
    assert rc == 0, out
    assert "OK" in out, out


def main() -> int:
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_")]
    failures = 0
    for name, fn in tests:
        with tempfile.TemporaryDirectory() as td:
            tmp = Path(td)
            try:
                fn(tmp)
                print(f"PASS {name}")
            except AssertionError as exc:
                failures += 1
                print(f"FAIL {name}: {exc}")
    if failures:
        print(f"stf_analyze_test: {failures} failure(s)")
        return 1
    print(f"stf_analyze_test: {len(tests)} tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
