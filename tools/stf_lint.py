#!/usr/bin/env python3
"""Compatibility shim: the conventions linter grew into tools/stf_analyze.py.

The eight stf_lint rules (header-doc, pragma-once, include-order, no-rand,
checked-access, test-coverage, raw-thread, no-empty-catch) live on in
stf_analyze.py alongside the determinism and locking rules, now running over
a real tokenizer instead of line regexes. This entry point forwards so
existing invocations -- `python3 tools/stf_lint.py [root]`, the `stf_lint`
ctest entry, CI -- keep working unchanged.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import stf_analyze  # noqa: E402

if __name__ == "__main__":
    sys.exit(stf_analyze.main(["stf_analyze"] + sys.argv[1:]))
