#!/usr/bin/env python3
"""Project-convention linter for the signature-test framework.

Runs as a CTest test (see the stf_lint entry in the top-level CMakeLists) and
standalone:

    python3 tools/stf_lint.py [repo-root]

Rules, all scoped to src/:

  header-doc       every public header opens with a file-level // comment
                   describing the unit (the API reference for a reader who
                   never opens the .cpp)
  pragma-once      every header starts with #pragma once (after comments)
  include-order    every .cpp includes its own header first
  no-rand          no rand()/srand() -- use stf::stats::Rng (seeded,
                   reproducible); no printf-family -- use iostreams
  checked-access   .front()/.back() only near an emptiness guard or an
                   explicit "// stf-lint: checked" escape comment
  test-coverage    every src/<mod>/<name>.cpp has <mod>/<name>.hpp
                   referenced somewhere under tests/
  raw-thread       no std::thread/std::jthread/std::async/pthread_create
                   outside src/core/ -- use stf::core::parallel_for /
                   parallel_map so thread counts, determinism and nested
                   parallelism stay centrally managed
  no-empty-catch   no empty `catch (...) {}` outside src/core/ -- silently
                   swallowing every exception hides contract violations and
                   corrupted-capture errors the guarded runtime must surface
                   as typed dispositions; handle, translate, or let it
                   propagate (the pool-teardown catches in src/core/ are the
                   single sanctioned exception)

The checked-access rule is a heuristic: a call is accepted when "empty(" or
the escape comment appears on the same line or in the 15 lines above it.
That window is deliberate -- a guard far from the access is worth re-stating
with STF_ASSERT anyway.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

GUARD_WINDOW = 15
GUARD_RE = re.compile(r"empty\s*\(|stf-lint:\s*checked")
ACCESS_RE = re.compile(r"\.\s*(?:front|back)\s*\(\s*\)")
BANNED_CALL_RE = re.compile(r"\b(rand|srand|printf|fprintf|sprintf)\s*\(")
RAW_THREAD_RE = re.compile(
    r"\bstd\s*::\s*(thread|jthread|async)\b|\bpthread_create\s*\(")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def strip_line_comment(line: str) -> str:
    # Good enough for this codebase: no multi-line comment spans code lines.
    return line.split("//", 1)[0]


def check_header_doc(path: Path, lines: list[str], errors: list[str]) -> None:
    for line in lines:
        text = line.strip()
        if not text:
            continue
        if text.startswith("//"):
            return
        break
    errors.append(f"{path}: header-doc: public header must open with a "
                  "file-level '//' doc comment describing the unit")


def check_pragma_once(path: Path, lines: list[str], errors: list[str]) -> None:
    in_block_comment = False
    for line in lines:
        text = line.strip()
        if in_block_comment:
            if "*/" in text:
                in_block_comment = False
            continue
        if not text or text.startswith("//"):
            continue
        if text.startswith("/*"):
            in_block_comment = "*/" not in text
            continue
        if text.startswith("#pragma once"):
            return
        break
    errors.append(f"{path}: pragma-once: header must start with #pragma once")


def check_include_order(path: Path, lines: list[str],
                        errors: list[str]) -> None:
    own_header = path.with_suffix(".hpp")
    if not own_header.exists():
        return  # e.g. a main-only translation unit
    expected = f"{path.parent.name}/{own_header.name}"
    for idx, line in enumerate(lines):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        if m.group(1) != expected:
            errors.append(
                f"{path}:{idx + 1}: include-order: first include must be the "
                f'unit\'s own header "{expected}", found "{m.group(1)}"')
        return
    errors.append(f"{path}: include-order: no quoted include found; expected "
                  f'"{expected}" first')


def check_banned_calls(path: Path, lines: list[str],
                       errors: list[str]) -> None:
    for idx, line in enumerate(lines):
        code = strip_line_comment(line)
        m = BANNED_CALL_RE.search(code)
        if m:
            hint = ("use stf::stats::Rng" if m.group(1) in ("rand", "srand")
                    else "use iostreams")
            errors.append(f"{path}:{idx + 1}: no-rand: call to {m.group(1)}() "
                          f"in src/ ({hint})")


def check_raw_threads(path: Path, lines: list[str],
                      errors: list[str]) -> None:
    # The parallel execution core owns every worker thread in the process;
    # ad-hoc threading elsewhere would bypass STF_THREADS, the nested-region
    # inlining that prevents pool deadlock, and the determinism contract.
    if "core" == path.parent.name:
        return
    for idx, line in enumerate(lines):
        m = RAW_THREAD_RE.search(strip_line_comment(line))
        if m:
            errors.append(
                f"{path}:{idx + 1}: raw-thread: {m.group(0).strip()} outside "
                "src/core/; use stf::core::parallel_for or parallel_map")


EMPTY_CATCH_RE = re.compile(r"catch\s*\(\s*\.\.\.\s*\)\s*\{\s*\}")


def check_empty_catch(path: Path, lines: list[str],
                      errors: list[str]) -> None:
    # The worker-pool teardown in src/core/ legitimately swallows exceptions
    # from detached workers; everywhere else an empty catch-all turns a
    # detectable failure into a silent wrong answer. The guarded runtime
    # exists precisely to classify bad data -- not to ignore it.
    if path.parent.name == "core":
        return
    # Join so `catch (...) {` / `}` split across lines is still caught.
    code = "\n".join(strip_line_comment(l) for l in lines)
    for m in EMPTY_CATCH_RE.finditer(code):
        line_no = code.count("\n", 0, m.start()) + 1
        errors.append(
            f"{path}:{line_no}: no-empty-catch: empty 'catch (...)' outside "
            "src/core/; handle the error, translate it, or let it propagate")


def check_front_back(path: Path, lines: list[str], errors: list[str]) -> None:
    for idx, line in enumerate(lines):
        if not ACCESS_RE.search(strip_line_comment(line)):
            continue
        lo = max(0, idx - GUARD_WINDOW)
        window = lines[lo:idx + 1]
        if any(GUARD_RE.search(w) for w in window):
            continue
        errors.append(
            f"{path}:{idx + 1}: checked-access: .front()/.back() without a "
            "nearby emptiness guard; add a check or an STF_REQUIRE/STF_ASSERT "
            "(or '// stf-lint: checked' with a justification)")


def check_test_coverage(root: Path, errors: list[str]) -> None:
    tests_dir = root / "tests"
    blob = "\n".join(
        p.read_text(errors="replace")
        for p in sorted(tests_dir.rglob("*.cpp")))
    for cpp in sorted((root / "src").rglob("*.cpp")):
        header = f"{cpp.parent.name}/{cpp.stem}.hpp"
        if header not in blob:
            errors.append(
                f"{cpp}: test-coverage: no file under tests/ references "
                f"{header}")


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    src = root / "src"
    if not src.is_dir():
        print(f"stf_lint: no src/ under {root}", file=sys.stderr)
        return 2

    errors: list[str] = []
    for path in sorted(src.rglob("*.hpp")):
        lines = path.read_text(errors="replace").splitlines()
        check_header_doc(path, lines, errors)
        check_pragma_once(path, lines, errors)
        check_banned_calls(path, lines, errors)
        check_raw_threads(path, lines, errors)
        check_empty_catch(path, lines, errors)
        check_front_back(path, lines, errors)
    for path in sorted(src.rglob("*.cpp")):
        lines = path.read_text(errors="replace").splitlines()
        check_include_order(path, lines, errors)
        check_banned_calls(path, lines, errors)
        check_raw_threads(path, lines, errors)
        check_empty_catch(path, lines, errors)
        check_front_back(path, lines, errors)
    check_test_coverage(root, errors)

    for e in errors:
        print(e)
    n_files = len(list(src.rglob("*.hpp"))) + len(list(src.rglob("*.cpp")))
    if errors:
        print(f"stf_lint: {len(errors)} violation(s) in {n_files} files")
        return 1
    print(f"stf_lint: OK ({n_files} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
